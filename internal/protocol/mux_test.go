package protocol

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opaque/internal/roadnet"
)

// muxPair wires a client to a handler over net.Pipe and returns the client.
func muxPair(t *testing.T, h MuxHandler, cfg MuxServerConfig) *MuxClient {
	t.Helper()
	clientEnd, serverEnd := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ServeMuxConn(serverEnd, h, cfg)
	}()
	c, err := NewMuxClient(clientEnd, Hello{Node: "test", Role: "client"})
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() {
		c.Close()
		<-done
	})
	return c
}

// echoHandler answers every ServerQuery with a reply echoing the query ID.
var echoHandler = MuxHandlerFunc(func(msg any, info ReqInfo) (any, error) {
	switch m := msg.(type) {
	case ServerQuery:
		return ServerReply{QueryID: m.QueryID, Degraded: info.Shed}, nil
	default:
		return nil, fmt.Errorf("unexpected message %T", msg)
	}
})

func TestMuxHandshakeCarriesIdentity(t *testing.T) {
	cfg := MuxServerConfig{Hello: func() Hello {
		return Hello{Node: "shard-0", Role: "server", Generation: 3, ContentSum: 0xfeed, Cells: 8, Profiles: []string{"am-peak"}}
	}}
	c := muxPair(t, echoHandler, cfg)
	peer := c.Peer()
	if peer.Node != "shard-0" || peer.Role != "server" || peer.Generation != 3 || peer.ContentSum != 0xfeed || peer.Cells != 8 {
		t.Errorf("peer hello = %+v", peer)
	}
	if len(peer.Profiles) != 1 || peer.Profiles[0] != "am-peak" {
		t.Errorf("peer profiles = %v", peer.Profiles)
	}
	if peer.MaxInFlight != DefaultMaxInFlight {
		t.Errorf("advertised admission window %d, want default %d", peer.MaxInFlight, DefaultMaxInFlight)
	}
}

func TestMuxConcurrentUnaryCalls(t *testing.T) {
	c := muxPair(t, echoHandler, MuxServerConfig{})
	const callers = 16
	const perCaller = 25
	var wg sync.WaitGroup
	errCh := make(chan error, callers)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				qid := uint64(w*1000 + i)
				res, err := c.Do(ServerQuery{QueryID: qid})
				if err != nil {
					errCh <- err
					return
				}
				rep, ok := res.(ServerReply)
				if !ok || rep.QueryID != qid {
					errCh <- fmt.Errorf("call %d got %+v", qid, res)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// streamingEcho answers batches item by item, out of order, like the batch
// engine emitting queries as they complete.
type streamingEcho struct{}

func (streamingEcho) HandleMux(msg any, info ReqInfo) (any, error) {
	return echoHandler(msg, info)
}

func (streamingEcho) HandleMuxBatch(b BatchQuery, info ReqInfo, emit func(BatchItem)) error {
	for i := len(b.Queries) - 1; i >= 0; i-- { // deliberately reversed completion order
		if b.Queries[i].QueryID == 666 {
			emit(BatchItem{BatchID: b.BatchID, Index: i, Error: "poisoned query"})
			continue
		}
		emit(BatchItem{BatchID: b.BatchID, Index: i, Reply: ServerReply{QueryID: b.Queries[i].QueryID, Degraded: info.Shed}})
	}
	return nil
}

func TestMuxStreamingBatch(t *testing.T) {
	c := muxPair(t, streamingEcho{}, MuxServerConfig{})
	qs := make([]ServerQuery, 10)
	for i := range qs {
		qs[i] = ServerQuery{QueryID: uint64(100 + i)}
	}
	qs[4].QueryID = 666
	br, err := c.DoBatch(BatchQuery{BatchID: 9, Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Replies) != len(qs) || len(br.Errors) != len(qs) {
		t.Fatalf("reply shape %d/%d for %d queries", len(br.Replies), len(br.Errors), len(qs))
	}
	for i := range qs {
		if i == 4 {
			if br.Errors[4] != "poisoned query" {
				t.Errorf("poisoned slot error = %q", br.Errors[4])
			}
			continue
		}
		if br.Errors[i] != "" || br.Replies[i].QueryID != qs[i].QueryID {
			t.Errorf("slot %d: reply %+v err %q", i, br.Replies[i], br.Errors[i])
		}
	}
}

func TestMuxRemoteError(t *testing.T) {
	h := MuxHandlerFunc(func(msg any, _ ReqInfo) (any, error) {
		return nil, fmt.Errorf("handler exploded")
	})
	c := muxPair(t, h, MuxServerConfig{})
	_, err := c.Do(ServerQuery{QueryID: 1})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if re.Msg != "handler exploded" {
		t.Errorf("remote message = %q", re.Msg)
	}
	// The connection survives a handler error.
	if res, err := c.Do(ServerQuery{QueryID: 2}); err == nil {
		t.Fatalf("handler always fails, got %+v", res)
	} else if !errors.As(err, &re) {
		t.Fatalf("second call: err = %v, want *RemoteError (connection should stay usable)", err)
	}
}

func TestMuxShedWatermark(t *testing.T) {
	// ShedAt 1: every request counts itself, so everything sheds.
	c := muxPair(t, echoHandler, MuxServerConfig{ShedAt: 1})
	res, err := c.Do(ServerQuery{QueryID: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.(ServerReply).Degraded {
		t.Error("ShedAt=1 did not shed a lone request")
	}

	// ShedAt 0 disables shedding even under concurrency.
	c2 := muxPair(t, echoHandler, MuxServerConfig{})
	var wg sync.WaitGroup
	var degraded atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c2.Do(ServerQuery{QueryID: uint64(i)})
			if err == nil && res.(ServerReply).Degraded {
				degraded.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if degraded.Load() != 0 {
		t.Errorf("%d replies degraded with shedding disabled", degraded.Load())
	}
}

func TestMuxBackpressureBounds(t *testing.T) {
	// MaxInFlight 2 with a gated handler: the third request must not start
	// until a slot frees.
	gate := make(chan struct{})
	var running, peak atomic.Int64
	h := MuxHandlerFunc(func(msg any, _ ReqInfo) (any, error) {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		<-gate
		running.Add(-1)
		return ServerReply{QueryID: msg.(ServerQuery).QueryID}, nil
	})
	c := muxPair(t, h, MuxServerConfig{MaxInFlight: 2})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = c.Do(ServerQuery{QueryID: uint64(i)})
		}(i)
	}
	// Let requests pile up against the admission window, then release them.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("admission window of 2 admitted %d concurrent requests", p)
	}
}

func TestMuxClosedConnectionFailsCalls(t *testing.T) {
	block := make(chan struct{})
	h := MuxHandlerFunc(func(msg any, _ ReqInfo) (any, error) {
		<-block
		return ServerReply{}, nil
	})
	c := muxPair(t, h, MuxServerConfig{})
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Do(ServerQuery{QueryID: 1})
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	close(block)
	if err := <-errCh; !errors.Is(err, ErrMuxClosed) {
		t.Errorf("pending call after Close: err = %v, want ErrMuxClosed", err)
	}
	if _, err := c.Do(ServerQuery{QueryID: 2}); !errors.Is(err, ErrMuxClosed) {
		t.Errorf("call on closed client: err = %v, want ErrMuxClosed", err)
	}
	if c.Err() == nil {
		t.Error("Err() nil after Close")
	}
}

func TestMuxWeightUpdateRoundTrip(t *testing.T) {
	h := MuxHandlerFunc(func(msg any, _ ReqInfo) (any, error) {
		wu, ok := msg.(WeightUpdate)
		if !ok {
			return nil, fmt.Errorf("unexpected %T", msg)
		}
		return WeightUpdateAck{UpdateID: wu.UpdateID, Generation: 2, ContentSum: 0xbeef}, nil
	})
	c := muxPair(t, h, MuxServerConfig{})
	res, err := c.Do(WeightUpdate{UpdateID: 11, Changes: []roadnet.ArcWeightChange{{From: 1, To: 2, NewCost: 3.5}}})
	if err != nil {
		t.Fatal(err)
	}
	ack, ok := res.(WeightUpdateAck)
	if !ok || ack.UpdateID != 11 || ack.Generation != 2 || ack.ContentSum != 0xbeef {
		t.Errorf("ack = %+v", res)
	}
}

// TestMuxPing pins the heartbeat probe: a FramePing comes back as a pong
// carrying the peer's *current* Hello — so a probe observes generation and
// checksum changes without a reconnect — and refreshes Peer().
func TestMuxPing(t *testing.T) {
	var gen atomic.Uint64
	gen.Store(1)
	cfg := MuxServerConfig{Hello: func() Hello {
		return Hello{Node: "shard-0", Role: "server", Generation: gen.Load(), ContentSum: gen.Load() * 0x1111}
	}}
	c := muxPair(t, echoHandler, cfg)
	if g := c.Peer().Generation; g != 1 {
		t.Fatalf("handshake generation = %d, want 1", g)
	}
	gen.Store(5)
	h, err := c.Ping(time.Now().Add(2 * time.Second))
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	if h.Generation != 5 || h.ContentSum != 5*0x1111 {
		t.Errorf("pong hello = %+v, want the refreshed identity", h)
	}
	if g := c.Peer().Generation; g != 5 {
		t.Errorf("Peer().Generation = %d after pong, want 5", g)
	}
}

// TestMuxPingWhileSaturated pins the liveness property the health prober
// depends on: pings are answered before the admission slot gate, so a peer
// whose every slot is occupied by slow work still pongs — saturation is not
// death.
func TestMuxPingWhileSaturated(t *testing.T) {
	gate := make(chan struct{})
	h := MuxHandlerFunc(func(msg any, _ ReqInfo) (any, error) {
		<-gate
		return ServerReply{QueryID: msg.(ServerQuery).QueryID}, nil
	})
	c := muxPair(t, h, MuxServerConfig{MaxInFlight: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = c.Do(ServerQuery{QueryID: 1})
	}()
	time.Sleep(30 * time.Millisecond) // let the request occupy the only slot
	if _, err := c.Ping(time.Now().Add(2 * time.Second)); err != nil {
		t.Errorf("ping against a saturated peer: %v", err)
	}
	close(gate)
	wg.Wait()
}

// TestMuxDeadlineClientTimeout pins the client half of deadline propagation:
// a call whose deadline passes with no reply fails with a deadline error and
// leaves the connection usable — an expired request is abandoned, not a
// connection failure.
func TestMuxDeadlineClientTimeout(t *testing.T) {
	gate := make(chan struct{})
	h := MuxHandlerFunc(func(msg any, _ ReqInfo) (any, error) {
		q := msg.(ServerQuery)
		if q.QueryID == 1 {
			<-gate
		}
		return ServerReply{QueryID: q.QueryID}, nil
	})
	c := muxPair(t, h, MuxServerConfig{})
	_, err := c.DoDeadline(ServerQuery{QueryID: 1}, time.Now().Add(40*time.Millisecond))
	if err == nil {
		t.Fatal("stalled call beat its deadline")
	}
	if !IsDeadlineExceeded(err) {
		t.Fatalf("stalled call error = %v, want a deadline error", err)
	}
	close(gate)
	res, err := c.Do(ServerQuery{QueryID: 2})
	if err != nil {
		t.Fatalf("call after a deadline miss: %v", err)
	}
	if rep := res.(ServerReply); rep.QueryID != 2 {
		t.Errorf("reply %+v after deadline miss", rep)
	}
}

// TestMuxDeadlineServerDrop pins the server half: work whose deadline
// expired while queued behind the admission gate is dropped without
// invoking the handler — the serving side never evaluates an answer nobody
// is waiting for.
func TestMuxDeadlineServerDrop(t *testing.T) {
	gate := make(chan struct{})
	var calls atomic.Int64
	h := MuxHandlerFunc(func(msg any, _ ReqInfo) (any, error) {
		calls.Add(1)
		<-gate
		return ServerReply{QueryID: msg.(ServerQuery).QueryID}, nil
	})
	c := muxPair(t, h, MuxServerConfig{MaxInFlight: 1})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = c.Do(ServerQuery{QueryID: 1}) // occupies the only slot
	}()
	time.Sleep(30 * time.Millisecond)
	go func() {
		defer wg.Done()
		// Queued behind the slot; expires before the slot frees.
		_, err := c.DoDeadline(ServerQuery{QueryID: 2}, time.Now().Add(40*time.Millisecond))
		if !IsDeadlineExceeded(err) {
			t.Errorf("queued-past-deadline call error = %v, want a deadline error", err)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let query 2 expire while queued
	close(gate)
	wg.Wait()
	// Give the dropped request's worker a beat, then demand the handler ran
	// exactly once: query 2 must have been dropped at the re-check.
	time.Sleep(50 * time.Millisecond)
	if n := calls.Load(); n != 1 {
		t.Errorf("handler ran %d times, want 1 (expired work must be dropped)", n)
	}
}

// FuzzMuxHello hammers the handshake/pong decoder with arbitrary payloads:
// decodeHello must never panic, and any hello it accepts must re-encode.
func FuzzMuxHello(f *testing.F) {
	for _, h := range []Hello{
		{},
		{Node: "shard-0", Role: "server", Generation: 3, ContentSum: 0xfeed, Cells: 8, MaxInFlight: 64, Profiles: []string{"am-peak", "pm-peak"}},
		{Node: "router", Role: "router"},
	} {
		payload, err := encodeHello(h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHello(data)
		if err != nil {
			return
		}
		if _, err := encodeHello(h); err != nil {
			t.Errorf("accepted hello %+v does not re-encode: %v", h, err)
		}
	})
}
