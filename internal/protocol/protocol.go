// Package protocol defines the messages exchanged between the three OPAQUE
// roles (client, obfuscator, directions search server) and codecs/transports
// to carry them. Two transports are provided: an in-process transport for
// experiments and tests, and a length-prefixed gob transport over TCP for the
// networked deployment built by the cmd/ binaries.
//
// The message boundary mirrors Figure 6 of the paper:
//
//	client      → obfuscator : ClientRequest  ⟨u, (s,t), fS, fT⟩   (secure channel)
//	obfuscator  → server     : ServerQuery    Q(S, T)
//	server      → obfuscator : ServerReply    candidate result paths
//	obfuscator  → client     : ClientReply    P(s, t)
//
// On top of the per-query exchange, BatchQuery/BatchReply carry a whole batch
// of obfuscated queries in one round trip, so a networked obfuscator can hand
// the server's batch engine an entire obfuscation plan (all Q(S, T) of one
// batching window) and amortise both framing and evaluation.
package protocol

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"opaque/internal/roadnet"
	"opaque/internal/search"
)

// MessageType tags a framed message on the wire.
type MessageType uint8

// Message type constants.
const (
	TypeClientRequest MessageType = iota + 1
	TypeClientReply
	TypeServerQuery
	TypeServerReply
	TypeError
	TypeBatchQuery
	TypeBatchReply
	TypeBatchItem
	TypeWeightUpdate
	TypeWeightUpdateAck
)

// ClientRequest is the client-to-obfuscator request over the secure channel.
type ClientRequest struct {
	RequestID uint64
	User      string
	Source    roadnet.NodeID
	Dest      roadnet.NodeID
	FS        int
	FT        int
	// Profile optionally names a server-side weight profile (a precustomized
	// time-of-day metric, e.g. "am-peak") the query should be answered under.
	// Empty means the live metric.
	Profile string
}

// ClientReply is the obfuscator-to-client answer: the requested path.
type ClientReply struct {
	RequestID uint64
	Found     bool
	Path      []roadnet.NodeID
	Cost      float64
	// Error carries a human-readable failure description when Found is
	// false because of an error (as opposed to an unreachable destination).
	Error string
}

// ServerQuery is one obfuscated path query Q(S, T) sent to the server. It
// deliberately carries no user identifiers: the server must not learn who is
// asking, only the anonymised endpoint sets.
type ServerQuery struct {
	QueryID uint64
	Sources []roadnet.NodeID
	Dests   []roadnet.NodeID
	// Profile optionally routes the query to a named precustomized weight
	// profile layer instead of the live metric. The profile name is regime
	// information ("plan for the morning peak"), not user identity: every
	// member of a shared query necessarily travels under the same profile,
	// so it reveals nothing about who is inside the query.
	Profile string
	// DistanceOnly asks for the |S|×|T| cost table without materialised node
	// sequences — the degraded answer an overloaded server sheds to (the
	// many-to-many engine computes it without unpacking a single path). The
	// multiplexed transport sets it on admission-control shedding; replies
	// to such queries carry Degraded.
	DistanceOnly bool
}

// CandidatePath is one (s, t, path) triple of a ServerReply.
type CandidatePath struct {
	Source roadnet.NodeID
	Dest   roadnet.NodeID
	Nodes  []roadnet.NodeID
	Cost   float64
	Found  bool
}

// ServerReply returns every candidate result path of one obfuscated query.
type ServerReply struct {
	QueryID uint64
	Paths   []CandidatePath
	// SettledNodes and PageFaults let experiments observe the server-side
	// cost without another channel; a production server would omit them.
	// PageFaults is exact under sequential evaluation and an upper bound
	// when the query overlapped others in a batch (the buffer pool's fault
	// counter is shared across in-flight queries).
	SettledNodes int
	PageFaults   int64
	// Generation and ContentSum identify the metric this reply was computed
	// under: the server's data generation and the weight-content checksum of
	// the graph snapshot served. The fleet router refuses to merge partial
	// tables whose ContentSums differ (or are 0 = unknown — the server could
	// not pin a stable identity because an update raced the evaluation), so
	// a distributed answer never mixes generations across shards. Generation
	// numbers are per-server and not comparable across shards; ContentSum
	// is content-derived and is. Both are 0 on legacy replies.
	Generation uint64
	ContentSum uint64
	// Profile echoes the weight profile the query was answered under ("" =
	// live metric); the router refuses to merge partials whose echoed
	// profiles differ.
	Profile string
	// Degraded marks a distance-only reply: admission control shed the query
	// to the many-to-many distance table and no node sequences were
	// materialised (every CandidatePath has nil Nodes).
	Degraded bool
}

// BatchQuery carries several obfuscated path queries to the server in one
// message, to be evaluated concurrently by the server's batch engine. Like
// ServerQuery it carries no user identifiers.
type BatchQuery struct {
	BatchID uint64
	Queries []ServerQuery
}

// BatchReply answers a BatchQuery: one reply per query, in query order.
// Queries that failed individually have their error message in Errors at the
// same index (empty string = success) rather than failing the whole batch.
type BatchReply struct {
	BatchID uint64
	Replies []ServerReply
	Errors  []string
}

// BatchItem is one query's result of a streaming batch reply: the
// multiplexed transport sends one BatchItem frame per query as it completes
// instead of buffering the whole BatchReply. Index is the query's position in
// the originating BatchQuery; Error carries the per-query failure ("" =
// success), mirroring BatchReply.Errors.
type BatchItem struct {
	BatchID uint64
	Index   int
	Reply   ServerReply
	Error   string
}

// WeightUpdate carries live arc weight changes to a server (or to the fleet
// router, which broadcasts them to every shard and replays the cumulative
// state to shards that reconnect). The changes flow into
// Server.UpdateWeights: snapshot swap, cache invalidation, background
// overlay re-customization.
type WeightUpdate struct {
	UpdateID uint64
	Changes  []roadnet.ArcWeightChange
}

// WeightUpdateAck acknowledges a WeightUpdate with the server's post-apply
// data generation and weight-content checksum — what the fleet router uses
// to observe shards converging on one metric.
type WeightUpdateAck struct {
	UpdateID   uint64
	Generation uint64
	ContentSum uint64
}

// ErrorReply reports a failure processing a query or request.
type ErrorReply struct {
	RefID   uint64
	Message string
}

// PathFromCandidate converts a wire CandidatePath back to a search.Path.
func PathFromCandidate(c CandidatePath) search.Path {
	if !c.Found {
		return search.Path{}
	}
	return search.Path{Nodes: append([]roadnet.NodeID(nil), c.Nodes...), Cost: c.Cost}
}

// CandidateFromPath converts a search.Path to its wire form for the pair
// (s, t).
func CandidateFromPath(s, t roadnet.NodeID, p search.Path) CandidatePath {
	return CandidatePath{
		Source: s,
		Dest:   t,
		Nodes:  append([]roadnet.NodeID(nil), p.Nodes...),
		Cost:   p.Cost,
		Found:  !p.Empty(),
	}
}

// Envelope wraps any protocol message with its type tag for gob framing.
type Envelope struct {
	Type MessageType
	// Deadline is the request's absolute deadline in Unix nanoseconds (0 =
	// none). It rides in the envelope so every hop of a multiplexed chain
	// (obfuscator → router → shard) sees the same wall-clock budget: the
	// serving side drops work whose deadline expired before evaluation
	// started instead of burning cycles on an answer nobody is waiting for.
	Deadline  int64            `json:",omitempty"`
	Request   *ClientRequest   `json:",omitempty"`
	Reply     *ClientReply     `json:",omitempty"`
	Query     *ServerQuery     `json:",omitempty"`
	Result    *ServerReply     `json:",omitempty"`
	Batch     *BatchQuery      `json:",omitempty"`
	BatchRes  *BatchReply      `json:",omitempty"`
	BatchItem *BatchItem       `json:",omitempty"`
	Update    *WeightUpdate    `json:",omitempty"`
	UpdateAck *WeightUpdateAck `json:",omitempty"`
	Err       *ErrorReply      `json:",omitempty"`
}

// Wrap builds an Envelope from a concrete message. It returns an error for
// unsupported message types.
func Wrap(msg any) (Envelope, error) {
	switch m := msg.(type) {
	case ClientRequest:
		return Envelope{Type: TypeClientRequest, Request: &m}, nil
	case *ClientRequest:
		return Envelope{Type: TypeClientRequest, Request: m}, nil
	case ClientReply:
		return Envelope{Type: TypeClientReply, Reply: &m}, nil
	case *ClientReply:
		return Envelope{Type: TypeClientReply, Reply: m}, nil
	case ServerQuery:
		return Envelope{Type: TypeServerQuery, Query: &m}, nil
	case *ServerQuery:
		return Envelope{Type: TypeServerQuery, Query: m}, nil
	case ServerReply:
		return Envelope{Type: TypeServerReply, Result: &m}, nil
	case *ServerReply:
		return Envelope{Type: TypeServerReply, Result: m}, nil
	case BatchQuery:
		return Envelope{Type: TypeBatchQuery, Batch: &m}, nil
	case *BatchQuery:
		return Envelope{Type: TypeBatchQuery, Batch: m}, nil
	case BatchReply:
		return Envelope{Type: TypeBatchReply, BatchRes: &m}, nil
	case *BatchReply:
		return Envelope{Type: TypeBatchReply, BatchRes: m}, nil
	case BatchItem:
		return Envelope{Type: TypeBatchItem, BatchItem: &m}, nil
	case *BatchItem:
		return Envelope{Type: TypeBatchItem, BatchItem: m}, nil
	case WeightUpdate:
		return Envelope{Type: TypeWeightUpdate, Update: &m}, nil
	case *WeightUpdate:
		return Envelope{Type: TypeWeightUpdate, Update: m}, nil
	case WeightUpdateAck:
		return Envelope{Type: TypeWeightUpdateAck, UpdateAck: &m}, nil
	case *WeightUpdateAck:
		return Envelope{Type: TypeWeightUpdateAck, UpdateAck: m}, nil
	case ErrorReply:
		return Envelope{Type: TypeError, Err: &m}, nil
	case *ErrorReply:
		return Envelope{Type: TypeError, Err: m}, nil
	default:
		return Envelope{}, fmt.Errorf("protocol: unsupported message type %T", msg)
	}
}

// Unwrap returns the concrete message held by the envelope.
func (e Envelope) Unwrap() (any, error) {
	switch e.Type {
	case TypeClientRequest:
		if e.Request == nil {
			return nil, fmt.Errorf("protocol: client request envelope without payload")
		}
		return *e.Request, nil
	case TypeClientReply:
		if e.Reply == nil {
			return nil, fmt.Errorf("protocol: client reply envelope without payload")
		}
		return *e.Reply, nil
	case TypeServerQuery:
		if e.Query == nil {
			return nil, fmt.Errorf("protocol: server query envelope without payload")
		}
		return *e.Query, nil
	case TypeServerReply:
		if e.Result == nil {
			return nil, fmt.Errorf("protocol: server reply envelope without payload")
		}
		return *e.Result, nil
	case TypeBatchQuery:
		if e.Batch == nil {
			return nil, fmt.Errorf("protocol: batch query envelope without payload")
		}
		return *e.Batch, nil
	case TypeBatchReply:
		if e.BatchRes == nil {
			return nil, fmt.Errorf("protocol: batch reply envelope without payload")
		}
		return *e.BatchRes, nil
	case TypeBatchItem:
		if e.BatchItem == nil {
			return nil, fmt.Errorf("protocol: batch item envelope without payload")
		}
		return *e.BatchItem, nil
	case TypeWeightUpdate:
		if e.Update == nil {
			return nil, fmt.Errorf("protocol: weight update envelope without payload")
		}
		return *e.Update, nil
	case TypeWeightUpdateAck:
		if e.UpdateAck == nil {
			return nil, fmt.Errorf("protocol: weight update ack envelope without payload")
		}
		return *e.UpdateAck, nil
	case TypeError:
		if e.Err == nil {
			return nil, fmt.Errorf("protocol: error envelope without payload")
		}
		return *e.Err, nil
	default:
		return nil, fmt.Errorf("protocol: unknown message type %d", e.Type)
	}
}

// Codec encodes and decodes envelopes on a stream.
type Codec interface {
	Encode(Envelope) error
	Decode(*Envelope) error
}

// GobCodec frames envelopes with encoding/gob; it is the default wire codec.
type GobCodec struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewGobCodec builds a codec reading from r and writing to w.
func NewGobCodec(r io.Reader, w io.Writer) *GobCodec {
	return &GobCodec{enc: gob.NewEncoder(w), dec: gob.NewDecoder(r)}
}

// Encode implements Codec.
func (c *GobCodec) Encode(e Envelope) error { return c.enc.Encode(e) }

// Decode implements Codec.
func (c *GobCodec) Decode(e *Envelope) error { return c.dec.Decode(e) }

// JSONCodec frames envelopes as newline-delimited JSON; useful for debugging
// and cross-language clients.
type JSONCodec struct {
	enc *json.Encoder
	dec *json.Decoder
}

// NewJSONCodec builds a JSON codec reading from r and writing to w.
func NewJSONCodec(r io.Reader, w io.Writer) *JSONCodec {
	return &JSONCodec{enc: json.NewEncoder(w), dec: json.NewDecoder(r)}
}

// Encode implements Codec.
func (c *JSONCodec) Encode(e Envelope) error { return c.enc.Encode(e) }

// Decode implements Codec.
func (c *JSONCodec) Decode(e *Envelope) error { return c.dec.Decode(e) }
