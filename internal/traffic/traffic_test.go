package traffic

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
)

// testGraph generates a small frozen network for ingestion tests.
func testGraph(t *testing.T, nodes int, seed uint64) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.TigerLike
	cfg.Nodes = nodes
	cfg.Seed = seed
	g, err := gen.Generate(cfg)
	if err != nil {
		t.Fatalf("generating graph: %v", err)
	}
	return g
}

// graphSink applies batches to a copy-on-write graph lineage and records
// them, standing in for the server's ApplyWeights.
type graphSink struct {
	mu      sync.Mutex
	g       *roadnet.Graph
	batches [][]roadnet.ArcWeightChange
	gen     uint64
}

func (s *graphSink) ApplyWeights(changes []roadnet.ArcWeightChange) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ng, err := s.g.WithUpdatedWeights(changes)
	if err != nil {
		return 0, err
	}
	s.g = ng
	s.gen++
	cp := make([]roadnet.ArcWeightChange, len(changes))
	copy(cp, changes)
	s.batches = append(s.batches, cp)
	return s.gen, nil
}

func (s *graphSink) graph() *roadnet.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g
}

func (s *graphSink) numBatches() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches)
}

// countingRefresher counts refresh runs, optionally sleeping to simulate a
// long re-customization.
type countingRefresher struct {
	runs  atomic64
	sleep time.Duration
}

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add() { a.mu.Lock(); a.v++; a.mu.Unlock() }
func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

func (r *countingRefresher) RecustomizeNow() error {
	r.runs.add()
	if r.sleep > 0 {
		time.Sleep(r.sleep)
	}
	return nil
}

// anyArc returns one arc of g with a positive cost.
func anyArc(t *testing.T, g *roadnet.Graph) roadnet.ArcWeightChange {
	t.Helper()
	for v := 0; v < g.NumNodes(); v++ {
		arcs := g.Arcs(roadnet.NodeID(v))
		if len(arcs) > 0 {
			return roadnet.ArcWeightChange{From: roadnet.NodeID(v), To: arcs[0].To, NewCost: arcs[0].Cost}
		}
	}
	t.Fatal("graph has no arcs")
	return roadnet.ArcWeightChange{}
}

func TestIngestBoundaryValidation(t *testing.T) {
	g := testGraph(t, 200, 7)
	sink := &graphSink{g: g}
	in, err := NewIngestor(sink, nil, Config{MaxWeight: 1e6, Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	ok := anyArc(t, g)
	bad := []struct {
		name string
		ev   roadnet.ArcWeightChange
	}{
		{"nan", roadnet.ArcWeightChange{From: ok.From, To: ok.To, NewCost: math.NaN()}},
		{"inf", roadnet.ArcWeightChange{From: ok.From, To: ok.To, NewCost: math.Inf(1)}},
		{"negative", roadnet.ArcWeightChange{From: ok.From, To: ok.To, NewCost: -1}},
		{"out-of-range", roadnet.ArcWeightChange{From: ok.From, To: ok.To, NewCost: 1e7}},
		{"unknown-node", roadnet.ArcWeightChange{From: roadnet.NodeID(g.NumNodes() + 5), To: ok.To, NewCost: 1}},
		{"missing-arc", roadnet.ArcWeightChange{From: ok.From, To: ok.From, NewCost: 1}},
	}
	for _, tc := range bad {
		err := in.Ingest(tc.ev)
		var inv *InvalidEventError
		if !errors.As(err, &inv) {
			t.Errorf("%s: want *InvalidEventError, got %v", tc.name, err)
		}
	}
	st := in.Stats()
	if st.Rejected != int64(len(bad)) {
		t.Errorf("Rejected = %d, want %d", st.Rejected, len(bad))
	}
	if st.Events != 0 || sink.numBatches() != 0 {
		t.Errorf("rejected events reached the pipeline: events=%d batches=%d", st.Events, sink.numBatches())
	}
}

func TestCoalescingLastWriteWins(t *testing.T) {
	g := testGraph(t, 200, 8)
	sink := &graphSink{g: g}
	// Huge delay and batch size: only Flush triggers the apply, so all ten
	// writes to the same arc must coalesce into one change with the last
	// value.
	in, err := NewIngestor(sink, nil, Config{MaxBatch: 1 << 20, MaxDelay: time.Hour, Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	a := anyArc(t, g)
	for i := 1; i <= 10; i++ {
		if err := in.Ingest(roadnet.ArcWeightChange{From: a.From, To: a.To, NewCost: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := sink.numBatches(); n != 1 {
		t.Fatalf("batches = %d, want 1", n)
	}
	if len(sink.batches[0]) != 1 {
		t.Fatalf("batch size = %d, want 1 coalesced change", len(sink.batches[0]))
	}
	if got := sink.batches[0][0].NewCost; got != 10 {
		t.Errorf("coalesced cost = %v, want last-write 10", got)
	}
	st := in.Stats()
	if st.Events != 10 || st.AppliedChanges != 1 {
		t.Errorf("events=%d applied=%d, want 10/1", st.Events, st.AppliedChanges)
	}
	if r := st.CoalesceRatio(); r != 10 {
		t.Errorf("coalesce ratio = %v, want 10", r)
	}
}

func TestMaxBatchTrigger(t *testing.T) {
	g := testGraph(t, 200, 9)
	sink := &graphSink{g: g}
	in, err := NewIngestor(sink, nil, Config{MaxBatch: 4, MaxDelay: time.Hour, Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	// Four events on distinct arcs must flush without any Flush call or
	// delay expiry.
	sent := 0
	for v := 0; v < g.NumNodes() && sent < 4; v++ {
		for _, a := range g.Arcs(roadnet.NodeID(v)) {
			in.Ingest(roadnet.ArcWeightChange{From: roadnet.NodeID(v), To: a.To, NewCost: a.Cost * 2})
			sent++
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.numBatches() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := sink.numBatches(); n != 1 {
		t.Fatalf("batches = %d, want 1 (size trigger)", n)
	}
	if len(sink.batches[0]) != 4 {
		t.Errorf("batch size = %d, want 4", len(sink.batches[0]))
	}
}

func TestMaxDelayTrigger(t *testing.T) {
	g := testGraph(t, 200, 10)
	sink := &graphSink{g: g}
	in, err := NewIngestor(sink, nil, Config{MaxBatch: 1 << 20, MaxDelay: 5 * time.Millisecond, Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	a := anyArc(t, g)
	if err := in.Ingest(roadnet.ArcWeightChange{From: a.From, To: a.To, NewCost: a.NewCost * 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.numBatches() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := sink.numBatches(); n != 1 {
		t.Fatalf("batches = %d, want 1 (delay trigger)", n)
	}
}

func TestCloseDrainsAndRefreshes(t *testing.T) {
	g := testGraph(t, 200, 11)
	sink := &graphSink{g: g}
	ref := &countingRefresher{}
	in, err := NewIngestor(sink, ref, Config{MaxBatch: 1 << 20, MaxDelay: time.Hour, Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	a := anyArc(t, g)
	if err := in.Ingest(roadnet.ArcWeightChange{From: a.From, To: a.To, NewCost: 42}); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if n := sink.numBatches(); n != 1 {
		t.Fatalf("batches after Close = %d, want 1", n)
	}
	if got, _ := sink.graph().ArcCost(a.From, a.To); got != 42 {
		t.Errorf("arc cost after Close = %v, want 42", got)
	}
	if ref.runs.load() == 0 {
		t.Error("refresher never ran; Close must catch the overlay up")
	}
	if err := in.Ingest(a); !errors.Is(err, ErrClosed) {
		t.Errorf("Ingest after Close = %v, want ErrClosed", err)
	}
	if err := in.Flush(); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := in.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

func TestRefreshFolding(t *testing.T) {
	g := testGraph(t, 200, 12)
	sink := &graphSink{g: g}
	// A slow refresher: while one run sleeps, every batch applied in the
	// meantime must fold into a single pending signal.
	ref := &countingRefresher{sleep: 50 * time.Millisecond}
	in, err := NewIngestor(sink, ref, Config{MaxBatch: 1, MaxDelay: time.Hour, Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	const events = 10
	a := anyArc(t, g)
	for i := 0; i < events; i++ {
		if err := in.Ingest(roadnet.ArcWeightChange{From: a.From, To: a.To, NewCost: float64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		// MaxBatch 1 turns every event into its own applied batch.
		if err := in.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Batches != events {
		t.Fatalf("batches = %d, want %d", st.Batches, events)
	}
	if st.RefreshRuns >= st.Batches {
		t.Errorf("refresh runs = %d for %d batches; pipelining must fold concurrent batches into fewer runs", st.RefreshRuns, st.Batches)
	}
	if st.RefreshRuns == 0 {
		t.Error("refresher never ran")
	}
}

// TestCoalescedEquivalentToSequential is the package-level property test:
// however the stream is batched (random flush points, interleaved arcs,
// revert-to-original sequences), the sink's final graph must equal the graph
// obtained by applying every raw event one at a time, in order.
func TestCoalescedEquivalentToSequential(t *testing.T) {
	g := testGraph(t, 400, 13)
	rng := rand.New(rand.NewSource(99))

	// A pool of hot arcs, remembering original costs so the stream can
	// revert arcs to their exact initial weights (the checksum fold must
	// cancel back to the original).
	type arc struct {
		from, to roadnet.NodeID
		orig     float64
	}
	var pool []arc
	for v := 0; v < g.NumNodes() && len(pool) < 40; v++ {
		for _, a := range g.Arcs(roadnet.NodeID(v)) {
			pool = append(pool, arc{roadnet.NodeID(v), a.To, a.Cost})
			break
		}
	}

	const events = 3000
	stream := make([]roadnet.ArcWeightChange, events)
	for i := range stream {
		a := pool[rng.Intn(len(pool))]
		cost := a.orig * (0.25 + 2*rng.Float64())
		if rng.Intn(5) == 0 {
			cost = a.orig // revert-to-original
		}
		stream[i] = roadnet.ArcWeightChange{From: a.from, To: a.to, NewCost: cost}
	}

	// Reference: raw sequential application, one event per snapshot.
	seq := g
	for _, ev := range stream {
		next, err := seq.WithUpdatedWeights([]roadnet.ArcWeightChange{ev})
		if err != nil {
			t.Fatal(err)
		}
		seq = next
	}

	sink := &graphSink{g: g}
	in, err := NewIngestor(sink, nil, Config{MaxBatch: 32, MaxDelay: time.Hour, Topology: g})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range stream {
		if err := in.Ingest(ev); err != nil {
			t.Fatal(err)
		}
		if rng.Intn(100) == 0 {
			if err := in.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		_ = i
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}

	got := sink.graph()
	if got.ContentChecksum() != seq.ContentChecksum() {
		t.Fatalf("coalesced checksum %x != sequential checksum %x", got.ContentChecksum(), seq.ContentChecksum())
	}
	for _, a := range pool {
		gc, _ := got.ArcCost(a.from, a.to)
		sc, _ := seq.ArcCost(a.from, a.to)
		if gc != sc {
			t.Errorf("arc %d→%d: coalesced %v != sequential %v", a.from, a.to, gc, sc)
		}
	}
	st := in.Stats()
	if st.Events != events {
		t.Errorf("events = %d, want %d", st.Events, events)
	}
	if st.AppliedChanges >= events {
		t.Errorf("applied changes = %d for %d raw events; coalescing never collapsed anything", st.AppliedChanges, events)
	}
}
