// Package traffic implements the streaming ingestion pipeline that sits in
// front of the server's live weight updates. A real traffic feed emits
// thousands of per-segment cost events per second; applying each one through
// Server.UpdateWeights would pay one copy-on-write snapshot swap and kick one
// overlay re-customization per event, thrashing the overlay and parking most
// queries on the SSMD fallback. The pipeline turns that stream into a
// sustainable load in three stages:
//
//  1. Validation at the boundary. Every event is checked before it can touch
//     any shared state: NaN, infinite, negative and out-of-range costs — and,
//     when the ingestor knows the topology, references to nonexistent arcs —
//     are rejected with a typed *InvalidEventError. A bad feed value can
//     therefore never poison a copy-on-write snapshot, and never drags down
//     the valid events batched alongside it.
//  2. Coalescing. Events accumulate in a pending batch, last-write-wins per
//     arc: a segment reported ten times between flushes contributes one
//     change. The batch flushes when it reaches Config.MaxBatch distinct arcs
//     or when the oldest pending event has waited Config.MaxDelay — so N raw
//     events become one snapshot swap and one incremental re-customization
//     instead of N, while no event is delayed longer than MaxDelay.
//  3. Pipelined refresh. Each applied batch signals a dedicated refresh
//     worker through a capacity-1 channel: while one re-customization runs,
//     any number of newly applied batches fold into a single pending signal,
//     and the next run starts from the freshest snapshot (the Refresher
//     loops internally until the overlay matches it). Back-to-back batches
//     never queue redundant passes, and the stale-query window stays near
//     one incremental re-customization latency regardless of arrival rate.
//
// The pipeline is deliberately decoupled from the server: it speaks to a
// Sink (apply a batch, return the new generation) and an optional Refresher
// (catch the overlay up), which the server implements with ApplyWeights and
// RecustomizeNow.
package traffic

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"opaque/internal/roadnet"
)

// Sink receives coalesced weight-change batches. The server's ApplyWeights
// implements it: one call is one copy-on-write snapshot swap.
type Sink interface {
	ApplyWeights(changes []roadnet.ArcWeightChange) (uint64, error)
}

// Refresher catches derived structures (the CH overlay's weight layer) up
// with the sink's current snapshot. It must be safe to call repeatedly and
// concurrently with applies; the server's RecustomizeNow implements it by
// looping until the installed overlay matches the freshest snapshot.
type Refresher interface {
	RecustomizeNow() error
}

// Config parameterises an Ingestor.
type Config struct {
	// MaxBatch flushes the pending batch when it holds this many distinct
	// arcs (default 256). Raw events beyond the first per arc coalesce and
	// do not count against the limit.
	MaxBatch int
	// MaxDelay flushes the pending batch when its oldest event has waited
	// this long (default 25ms). This bounds the staleness an event can
	// accumulate in the coalescer regardless of arrival rate.
	MaxDelay time.Duration
	// Queue is the capacity of the event channel between Ingest callers and
	// the coalescer (default 4096). When it fills, Ingest blocks — the feed
	// sees backpressure instead of the server seeing unbounded memory.
	Queue int
	// MaxWeight rejects events whose cost exceeds it (0 = no upper bound
	// beyond finiteness). Feeds that model closures as very large costs set
	// this to their closure constant so a corrupt value above it cannot
	// enter.
	MaxWeight float64
	// Topology, when set, additionally validates that every event references
	// an existing arc of this graph. Weight updates cannot change topology,
	// so the startup graph stays authoritative for the whole stream; without
	// it an unknown-arc event is only caught at apply time, where it fails
	// the whole batch.
	Topology *roadnet.Graph
	// OnApplied, when set, runs on the coalescer goroutine after each batch
	// is applied, with the coalesced changes and the new data generation.
	// Experiments use it to verify every applied batch against a reference
	// search before the next one can land.
	OnApplied func(changes []roadnet.ArcWeightChange, gen uint64)
}

// Defaults for Config zero values.
const (
	DefaultMaxBatch = 256
	DefaultMaxDelay = 25 * time.Millisecond
	DefaultQueue    = 4096
)

// ErrClosed is returned by Ingest and Flush after Close.
var ErrClosed = errors.New("traffic: ingestor is closed")

// InvalidEventError reports an event rejected at the ingestion boundary —
// before it could reach the pending batch, let alone a snapshot swap.
type InvalidEventError struct {
	Event  roadnet.ArcWeightChange
	Reason string
}

// Error implements error.
func (e *InvalidEventError) Error() string {
	return fmt.Sprintf("traffic: invalid event %d→%d (cost %v): %s", e.Event.From, e.Event.To, e.Event.NewCost, e.Reason)
}

// Stats is a snapshot of the ingestor's counters.
type Stats struct {
	// Events counts raw events accepted by Ingest; Rejected counts events
	// refused by boundary validation.
	Events   int64
	Rejected int64
	// Batches counts flushes that reached the sink; AppliedChanges sums
	// their sizes (distinct arcs after coalescing).
	Batches        int64
	AppliedChanges int64
	// ApplyFailures counts batches the sink refused (the batch is dropped;
	// boundary validation makes this unreachable for value errors).
	ApplyFailures int64
	// RefreshRuns / RefreshFailures count the pipelined refresh worker's
	// Refresher calls. Runs can be far fewer than Batches: that gap is the
	// folding the pipeline exists for.
	RefreshRuns     int64
	RefreshFailures int64
	// QueueDepth is the number of accepted events waiting for the coalescer.
	QueueDepth int
}

// CoalesceRatio returns raw events per applied change — how many snapshot
// swaps the coalescer saved. 1 means no event shared an arc with another in
// its flush window; 10 means ten raw events collapsed into one change.
func (s Stats) CoalesceRatio() float64 {
	if s.AppliedChanges == 0 {
		return 0
	}
	return float64(s.Events) / float64(s.AppliedChanges)
}

// Ingestor is the streaming ingestion pipeline: Ingest validates and
// enqueues events, a coalescer goroutine batches and applies them through
// the Sink, and a refresh worker keeps the Refresher caught up without ever
// queueing redundant runs.
type Ingestor struct {
	cfg       Config
	sink      Sink
	refresher Refresher

	events  chan roadnet.ArcWeightChange
	flushC  chan chan struct{}
	refresh chan struct{}

	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	events_     atomic.Int64
	rejected    atomic.Int64
	batches     atomic.Int64
	applied     atomic.Int64
	applyFails  atomic.Int64
	refreshRuns atomic.Int64
	refreshFail atomic.Int64
	lastErr     atomic.Pointer[error]
}

// NewIngestor starts the pipeline over sink. refresher may be nil for sinks
// with no derived state to catch up (a plain SSMD server); everything else
// behaves identically. Close releases the two goroutines this starts.
func NewIngestor(sink Sink, refresher Refresher, cfg Config) (*Ingestor, error) {
	if sink == nil {
		return nil, fmt.Errorf("traffic: nil sink")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultMaxDelay
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.MaxWeight < 0 || math.IsNaN(cfg.MaxWeight) {
		return nil, fmt.Errorf("traffic: invalid MaxWeight %v", cfg.MaxWeight)
	}
	in := &Ingestor{
		cfg:       cfg,
		sink:      sink,
		refresher: refresher,
		events:    make(chan roadnet.ArcWeightChange, cfg.Queue),
		flushC:    make(chan chan struct{}),
		refresh:   make(chan struct{}, 1),
	}
	in.wg.Add(1)
	go in.coalesceLoop()
	if refresher != nil {
		in.wg.Add(1)
		go in.refreshLoop()
	}
	return in, nil
}

// Ingest validates one event and enqueues it for coalescing. Validation
// failures return a typed *InvalidEventError without touching any shared
// state; a full queue blocks the caller (backpressure). Safe for any number
// of concurrent feeds.
func (in *Ingestor) Ingest(ev roadnet.ArcWeightChange) error {
	if err := in.validate(ev); err != nil {
		in.rejected.Add(1)
		return err
	}
	in.closeMu.RLock()
	defer in.closeMu.RUnlock()
	if in.closed {
		return ErrClosed
	}
	in.events <- ev
	in.events_.Add(1)
	return nil
}

// validate is the ingestion boundary: it rejects events that could poison a
// snapshot (or, with Topology set, fail a whole batch at apply time).
func (in *Ingestor) validate(ev roadnet.ArcWeightChange) error {
	switch {
	case math.IsNaN(ev.NewCost):
		return &InvalidEventError{Event: ev, Reason: "cost is NaN"}
	case math.IsInf(ev.NewCost, 0):
		return &InvalidEventError{Event: ev, Reason: "cost is infinite"}
	case ev.NewCost < 0:
		return &InvalidEventError{Event: ev, Reason: "cost is negative"}
	case in.cfg.MaxWeight > 0 && ev.NewCost > in.cfg.MaxWeight:
		return &InvalidEventError{Event: ev, Reason: fmt.Sprintf("cost exceeds MaxWeight %v", in.cfg.MaxWeight)}
	}
	if g := in.cfg.Topology; g != nil {
		if !g.ValidNode(ev.From) || !g.ValidNode(ev.To) {
			return &InvalidEventError{Event: ev, Reason: "references unknown node"}
		}
		if _, ok := g.ArcCost(ev.From, ev.To); !ok {
			return &InvalidEventError{Event: ev, Reason: "references nonexistent arc"}
		}
	}
	return nil
}

// Flush applies every event ingested before the call and returns once the
// sink has absorbed them. It does not wait for the refresh worker; tests
// that need a fresh overlay follow with the refresher's own entry point (or
// Close, which waits for everything).
func (in *Ingestor) Flush() error {
	in.closeMu.RLock()
	if in.closed {
		in.closeMu.RUnlock()
		return ErrClosed
	}
	done := make(chan struct{})
	in.flushC <- done
	in.closeMu.RUnlock()
	<-done
	return nil
}

// Close drains and applies all accepted events, runs one final refresh (when
// a Refresher is configured) and stops both goroutines. After Close returns,
// the sink has seen every event and the refresher has caught up with the
// final snapshot. Ingest and Flush return ErrClosed afterwards. Close is
// idempotent.
func (in *Ingestor) Close() error {
	in.closeMu.Lock()
	if in.closed {
		in.closeMu.Unlock()
		return nil
	}
	in.closed = true
	close(in.events)
	in.closeMu.Unlock()
	in.wg.Wait()
	if err := in.lastErr.Load(); err != nil {
		return *err
	}
	return nil
}

// Stats returns a snapshot of the pipeline counters.
func (in *Ingestor) Stats() Stats {
	return Stats{
		Events:          in.events_.Load(),
		Rejected:        in.rejected.Load(),
		Batches:         in.batches.Load(),
		AppliedChanges:  in.applied.Load(),
		ApplyFailures:   in.applyFails.Load(),
		RefreshRuns:     in.refreshRuns.Load(),
		RefreshFailures: in.refreshFail.Load(),
		QueueDepth:      len(in.events),
	}
}

// coalesceLoop is the single goroutine that owns the pending batch: a
// last-write-wins map plus the arcs' first-arrival order, flushed on size,
// delay, explicit Flush, or shutdown.
func (in *Ingestor) coalesceLoop() {
	defer in.wg.Done()
	defer func() {
		if in.refresher != nil {
			close(in.refresh)
		}
	}()

	pending := make(map[[2]roadnet.NodeID]float64, in.cfg.MaxBatch)
	var order [][2]roadnet.NodeID

	timer := time.NewTimer(in.cfg.MaxDelay)
	if !timer.Stop() {
		<-timer.C
	}
	timerArmed := false
	disarm := func() {
		if timerArmed && !timer.Stop() {
			<-timer.C
		}
		timerArmed = false
	}

	add := func(ev roadnet.ArcWeightChange) {
		key := [2]roadnet.NodeID{ev.From, ev.To}
		if _, dup := pending[key]; !dup {
			order = append(order, key)
			if len(order) == 1 {
				timer.Reset(in.cfg.MaxDelay)
				timerArmed = true
			}
		}
		pending[key] = ev.NewCost
	}

	flush := func() {
		disarm()
		if len(order) == 0 {
			return
		}
		changes := make([]roadnet.ArcWeightChange, len(order))
		for i, key := range order {
			changes[i] = roadnet.ArcWeightChange{From: key[0], To: key[1], NewCost: pending[key]}
		}
		clear(pending)
		order = order[:0]
		gen, err := in.sink.ApplyWeights(changes)
		if err != nil {
			// Boundary validation makes value errors unreachable here; what
			// remains (unknown arcs without Topology configured) drops the
			// batch and keeps the stream alive.
			in.applyFails.Add(1)
			in.lastErr.Store(&err)
			return
		}
		in.batches.Add(1)
		in.applied.Add(int64(len(changes)))
		if in.cfg.OnApplied != nil {
			in.cfg.OnApplied(changes, gen)
		}
		if in.refresher != nil {
			// Capacity-1 signal: batches applied while a refresh runs fold
			// into one pending run instead of queueing one run each.
			select {
			case in.refresh <- struct{}{}:
			default:
			}
		}
	}

	for {
		select {
		case ev, ok := <-in.events:
			if !ok {
				flush()
				return
			}
			add(ev)
			if len(order) >= in.cfg.MaxBatch {
				flush()
			}
		case <-timer.C:
			timerArmed = false
			flush()
		case done := <-in.flushC:
			// Drain everything already enqueued so Flush's "every event
			// ingested before the call" promise holds, then apply.
			for {
				select {
				case ev, ok := <-in.events:
					if !ok {
						flush()
						close(done)
						return
					}
					add(ev)
					if len(order) >= in.cfg.MaxBatch {
						flush()
					}
					continue
				default:
				}
				break
			}
			flush()
			close(done)
		}
	}
}

// refreshLoop is the pipelined re-customization worker: one Refresher call
// per pending signal, never more than one in flight, each starting from the
// freshest snapshot.
func (in *Ingestor) refreshLoop() {
	defer in.wg.Done()
	for range in.refresh {
		in.refreshRuns.Add(1)
		if err := in.refresher.RecustomizeNow(); err != nil {
			in.refreshFail.Add(1)
			in.lastErr.Store(&err)
		}
	}
}
