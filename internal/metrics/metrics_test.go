package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	if r.Counter("queries") != 0 {
		t.Error("unused counter should read 0")
	}
	r.Add("queries", 3)
	r.Add("queries", 2)
	if got := r.Counter("queries"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	r.SetGauge("buffer_hit_ratio", 0.75)
	if got := r.Gauge("buffer_hit_ratio"); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
	if r.Gauge("missing") != 0 {
		t.Error("unset gauge should read 0")
	}
}

func TestHistogramObservations(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeroes")
	}
	durations := []time.Duration{
		50 * time.Microsecond,
		300 * time.Microsecond,
		2 * time.Millisecond,
		2 * time.Millisecond,
		40 * time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}
	h.Observe(-time.Second) // clamped to zero, must not panic or corrupt
	if h.Count() != int64(len(durations))+1 {
		t.Errorf("count = %d", h.Count())
	}
	s := h.Summary()
	if s.Maximum != 40*time.Millisecond {
		t.Errorf("max = %v", s.Maximum)
	}
	if s.Mean <= 0 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("percentiles not monotone: %v %v %v", s.P50, s.P90, s.P99)
	}
	if s.P99 < 40*time.Millisecond {
		t.Errorf("p99 = %v, should cover the slowest observation's bucket", s.P99)
	}
}

// Property: for any set of observations, quantiles are monotone in q and the
// p100 bound is at least the true maximum.
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewHistogram()
		var max time.Duration
		for _, v := range raw {
			d := time.Duration(v%10_000_000) * time.Microsecond
			if d > max {
				max = d
			}
			h.Observe(d)
		}
		if len(raw) == 0 {
			return h.Quantile(0.5) == 0
		}
		q50, q90, q100 := h.Quantile(0.5), h.Quantile(0.9), h.Quantile(1)
		return q50 <= q90 && q90 <= q100 && q100 >= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRegistryHistogramAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Add("queries", 2)
	r.SetGauge("resident_pages", 12)
	r.Observe("query_latency", 3*time.Millisecond)
	r.Observe("query_latency", 5*time.Millisecond)
	if r.Histogram("query_latency") == nil {
		t.Fatal("histogram not registered")
	}
	if r.Histogram("other") != nil {
		t.Error("unknown histogram should be nil")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "queries" || snap.Counters[0].Value != 2 {
		t.Errorf("counters snapshot = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 12 {
		t.Errorf("gauges snapshot = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 2 {
		t.Errorf("histograms snapshot = %+v", snap.Histograms)
	}
	var sb strings.Builder
	if _, err := snap.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"counter queries = 2", "gauge resident_pages = 12", "histogram query_latency count=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add("ops", 1)
				r.Observe("lat", time.Duration(i)*time.Microsecond)
				r.SetGauge("g", float64(i))
			}
		}()
	}
	wg.Wait()
	if r.Counter("ops") != 1600 {
		t.Errorf("ops = %d, want 1600", r.Counter("ops"))
	}
	if r.Histogram("lat").Count() != 1600 {
		t.Errorf("lat count = %d, want 1600", r.Histogram("lat").Count())
	}
}
