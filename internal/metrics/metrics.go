// Package metrics is a small, dependency-free instrumentation registry used
// by the OPAQUE server and obfuscator service: named counters, gauges and
// latency histograms that can be snapshotted for logs, tests and the
// load-test example. It is how the reproduction observes the quantities the
// paper's evaluation (Section V) reports — queries processed, nodes settled,
// page faults, batch sizes, cache hit ratios — without wiring an external
// metrics stack into a research codebase.
//
// The hot path is lock-free: counters are atomic integers obtained once with
// CounterVar and bumped without touching the registry map, and histograms use
// atomic buckets, so the batch engine can record per-query metrics from many
// workers without a shared mutex. Name-based lookups (Add, Observe) remain
// for convenience on cold paths. The design still favours predictable
// behaviour over features — fixed histogram buckets, no background
// goroutines — which is all a reproduction study needs to report what its
// components did.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a named monotonically increasing value. Obtain one with
// Registry.CounterVar and keep it: Add on a Counter is a single atomic
// instruction, suitable for per-query hot paths.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry holds named metrics. The zero value is not usable; create one with
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]float64
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]float64),
		histograms: make(map[string]*Histogram),
	}
}

// CounterVar returns the named counter, registering it on first use. Callers
// on hot paths should fetch the Counter once and Add on it directly.
func (r *Registry) CounterVar(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Add increments the named counter by delta (convenience name-based form;
// prefer CounterVar on hot paths).
func (r *Registry) Add(name string, delta int64) {
	r.CounterVar(name).Add(delta)
}

// Counter returns the current value of the named counter (0 if never used).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c.Value()
	}
	return 0
}

// SetGauge records an instantaneous value.
func (r *Registry) SetGauge(name string, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = value
}

// Gauge returns the last recorded value of the named gauge (0 if never set).
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// HistogramVar returns the named histogram, registering it on first use.
// Callers on hot paths should fetch the Histogram once and Observe on it
// directly.
func (r *Registry) HistogramVar(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Observe records a duration in the named histogram (convenience name-based
// form; prefer HistogramVar on hot paths).
func (r *Registry) Observe(name string, d time.Duration) {
	r.HistogramVar(name).Observe(d)
}

// Histogram returns the named histogram, or nil when nothing was observed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histograms[name]
}

// Snapshot captures every metric at one point in time, with stable ordering
// for rendering.
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []NamedHistogram
}

// NamedValue is one counter or gauge value.
type NamedValue struct {
	Name  string
	Value float64
}

// NamedHistogram is one histogram summary.
type NamedHistogram struct {
	Name    string
	Count   int64
	Mean    time.Duration
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
	Maximum time.Duration
}

// Snapshot returns a copy of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var snap Snapshot
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, NamedValue{Name: name, Value: float64(c.Value())})
	}
	for name, v := range r.gauges {
		snap.Gauges = append(snap.Gauges, NamedValue{Name: name, Value: v})
	}
	for name, h := range r.histograms {
		s := h.Summary()
		s.Name = name
		snap.Histograms = append(snap.Histograms, s)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// WriteTo renders the snapshot as plain text, one metric per line.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, c := range s.Counters {
		if err := write("counter %s = %.0f\n", c.Name, c.Value); err != nil {
			return total, err
		}
	}
	for _, g := range s.Gauges {
		if err := write("gauge %s = %g\n", g.Name, g.Value); err != nil {
			return total, err
		}
	}
	for _, h := range s.Histograms {
		if err := write("histogram %s count=%d mean=%v p50=%v p90=%v p99=%v max=%v\n",
			h.Name, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Maximum); err != nil {
			return total, err
		}
	}
	return total, nil
}

// histogram bucket boundaries: 16 exponentially growing latency buckets from
// 100µs to ~55min; the last bucket is open-ended.
var bucketBounds = buildBounds()

func buildBounds() []time.Duration {
	bounds := make([]time.Duration, 0, 16)
	d := 100 * time.Microsecond
	for i := 0; i < 16; i++ {
		bounds = append(bounds, d)
		d *= 2
	}
	return bounds
}

// Histogram is a fixed-bucket latency histogram. Per-bucket counts and the
// running sum/max are atomics, so Observe is lock-free and safe to call from
// any number of goroutines; summaries read a slightly racy but internally
// consistent-enough snapshot, which is fine for reporting.
type Histogram struct {
	buckets  [17]atomic.Int64 // len(bucketBounds)+1 overflow bucket
	count    atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := len(bucketBounds)
	for i, b := range bucketBounds {
		if d <= b {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	for {
		cur := h.maxNanos.Load()
		if int64(d) <= cur || h.maxNanos.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) based on the
// bucket boundaries; the overflow bucket reports the observed maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i < len(bucketBounds) {
				return bucketBounds[i]
			}
			return time.Duration(h.maxNanos.Load())
		}
	}
	return time.Duration(h.maxNanos.Load())
}

// Summary returns count, mean and the standard percentiles.
func (h *Histogram) Summary() NamedHistogram {
	count := h.count.Load()
	s := NamedHistogram{Count: count, Maximum: time.Duration(h.maxNanos.Load())}
	if count > 0 {
		s.Mean = time.Duration(h.sumNanos.Load()) / time.Duration(count)
	}
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	return s
}
