// Package metrics is a small, dependency-free instrumentation registry used
// by the OPAQUE server and obfuscator service: named counters, gauges and
// latency histograms that can be snapshotted for logs, tests and the
// load-test example. It favours predictable behaviour over features — fixed
// histogram buckets, no background goroutines, plain mutex protection — which
// is all a reproduction study needs to report what its components did.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// Registry holds named metrics. The zero value is not usable; create one with
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]int64
	gauges     map[string]float64
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]int64),
		gauges:     make(map[string]float64),
		histograms: make(map[string]*Histogram),
	}
}

// Add increments the named counter by delta.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Counter returns the current value of the named counter (0 if never used).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge records an instantaneous value.
func (r *Registry) SetGauge(name string, value float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = value
}

// Gauge returns the last recorded value of the named gauge (0 if never set).
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Observe records a duration in the named histogram.
func (r *Registry) Observe(name string, d time.Duration) {
	r.mu.Lock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	r.mu.Unlock()
	h.Observe(d)
}

// Histogram returns the named histogram, or nil when nothing was observed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.histograms[name]
}

// Snapshot captures every metric at one point in time, with stable ordering
// for rendering.
type Snapshot struct {
	Counters   []NamedValue
	Gauges     []NamedValue
	Histograms []NamedHistogram
}

// NamedValue is one counter or gauge value.
type NamedValue struct {
	Name  string
	Value float64
}

// NamedHistogram is one histogram summary.
type NamedHistogram struct {
	Name    string
	Count   int64
	Mean    time.Duration
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
	Maximum time.Duration
}

// Snapshot returns a copy of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var snap Snapshot
	for name, v := range r.counters {
		snap.Counters = append(snap.Counters, NamedValue{Name: name, Value: float64(v)})
	}
	for name, v := range r.gauges {
		snap.Gauges = append(snap.Gauges, NamedValue{Name: name, Value: v})
	}
	for name, h := range r.histograms {
		s := h.Summary()
		s.Name = name
		snap.Histograms = append(snap.Histograms, s)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}

// WriteTo renders the snapshot as plain text, one metric per line.
func (s Snapshot) WriteTo(w io.Writer) (int64, error) {
	var total int64
	write := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}
	for _, c := range s.Counters {
		if err := write("counter %s = %.0f\n", c.Name, c.Value); err != nil {
			return total, err
		}
	}
	for _, g := range s.Gauges {
		if err := write("gauge %s = %g\n", g.Name, g.Value); err != nil {
			return total, err
		}
	}
	for _, h := range s.Histograms {
		if err := write("histogram %s count=%d mean=%v p50=%v p90=%v p99=%v max=%v\n",
			h.Name, h.Count, h.Mean, h.P50, h.P90, h.P99, h.Maximum); err != nil {
			return total, err
		}
	}
	return total, nil
}

// histogram bucket boundaries: 16 exponentially growing latency buckets from
// 100µs to ~55min; the last bucket is open-ended.
var bucketBounds = buildBounds()

func buildBounds() []time.Duration {
	bounds := make([]time.Duration, 0, 16)
	d := 100 * time.Microsecond
	for i := 0; i < 16; i++ {
		bounds = append(bounds, d)
		d *= 2
	}
	return bounds
}

// Histogram is a fixed-bucket latency histogram. It keeps per-bucket counts
// plus exact running sum/max, so summaries are cheap and allocation-free.
type Histogram struct {
	mu      sync.Mutex
	buckets [17]int64 // len(bucketBounds)+1 overflow bucket
	count   int64
	sum     time.Duration
	max     time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := len(bucketBounds)
	for i, b := range bucketBounds {
		if d <= b {
			idx = i
			break
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[idx]++
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) based on the
// bucket boundaries; the overflow bucket reports the observed maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i < len(bucketBounds) {
				return bucketBounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Summary returns count, mean and the standard percentiles.
func (h *Histogram) Summary() NamedHistogram {
	h.mu.Lock()
	count := h.count
	sum := h.sum
	max := h.max
	h.mu.Unlock()
	s := NamedHistogram{Count: count, Maximum: max}
	if count > 0 {
		s.Mean = sum / time.Duration(count)
	}
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P99 = h.Quantile(0.99)
	return s
}
