package server

import (
	"fmt"
	"time"

	"opaque/internal/ch"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// This file is the server's live weight update path. An update (traffic
// refresh, road closure, reopening) flows through three layers, each with
// its own consistency mechanism:
//
//  1. storage.MutableGraph applies the changes copy-on-write and swaps the
//     current snapshot atomically — queries in flight keep their pinned
//     pre-update snapshot, queries admitted afterwards pin the new one, and
//     no query ever sees a mix.
//  2. The SSMD tree cache invalidates itself: cached spanning trees are
//     keyed by accessor generation, which the swap bumped.
//  3. The CH overlay cannot serve the new metric until its weight layer is
//     re-customized. Until then the routing check in chooseProcessor (and
//     the engines' own checksum/generation verification, for races that
//     slip past it) diverts overlay traffic to the SSMD fallback — counted
//     in overlay_stale_queries — while kickRecustomize refreshes the weight
//     layer in the background and swaps the fresh overlay state in
//     atomically. On the measured 50k-node network the refresh costs well
//     under a second against ~10 s for a re-contraction (experiment E16).

// UpdateWeights applies live weight changes to the served road network and
// returns the new data generation. Queries already admitted complete against
// the pre-update snapshot; queries admitted after the call see the new
// weights — via the SSMD processor immediately, and via the CH overlay once
// the background re-customization (kicked here) has swapped the refreshed
// overlay in. Use RecustomizeNow to wait for that swap deterministically.
//
// Updates require the in-memory backend: paged deployments serve a frozen
// page layout and reject updates. The heuristic pairwise strategies refuse
// them too: pairwise-alt's landmark bounds and pairwise-astar's scaled
// Euclidean heuristic are admissible for the startup metric only — a
// lowered weight would silently turn both into non-shortest-path searches.
func (s *Server) UpdateWeights(changes []roadnet.ArcWeightChange) (uint64, error) {
	gen, err := s.applyWeights(changes)
	if err != nil {
		return gen, err
	}
	s.kickRecustomize()
	return gen, nil
}

// ApplyWeights is UpdateWeights without the background re-customization
// kick: the snapshot swaps, caches invalidate, stale overlay routing kicks
// in — but catching the overlay up is the caller's job. The streaming
// ingestion pipeline (Server.NewIngestor) uses it as its batch sink, because
// its own pipelined refresh worker drives RecustomizeNow with folding: one
// pending run however many batches land while a run is in flight.
func (s *Server) ApplyWeights(changes []roadnet.ArcWeightChange) (uint64, error) {
	return s.applyWeights(changes)
}

// applyWeights is the shared swap path of UpdateWeights and ApplyWeights.
func (s *Server) applyWeights(changes []roadnet.ArcWeightChange) (uint64, error) {
	if s.mutable == nil {
		return 0, fmt.Errorf("server: live weight updates require the in-memory backend (paged deployments serve a frozen page layout)")
	}
	switch s.cfg.Strategy {
	case search.StrategyPairwiseALT:
		return 0, fmt.Errorf("server: live weight updates are unsupported under strategy %q — ALT landmark bounds are computed for the startup metric and would become inadmissible", s.cfg.Strategy)
	case search.StrategyPairwiseAStar:
		return 0, fmt.Errorf("server: live weight updates are unsupported under strategy %q — the scaled Euclidean heuristic is admissible for the startup metric only", s.cfg.Strategy)
	}
	gen, err := s.mutable.UpdateWeights(changes)
	if err != nil {
		return gen, fmt.Errorf("server: %w", err)
	}
	s.mWeightUpd.Add(1)
	s.notePendingCells(changes)
	return gen, nil
}

// notePendingCells records which overlay weight layers the applied changes
// dirtied, feeding the recustomize_pending_cells gauge: the union of touched
// cells the next incremental re-customization will have to re-run. An arc
// interior to one cell dirties that cell; a boundary or cell-crossing arc —
// and any change on an unpartitioned overlay — dirties the top layer,
// tracked as the pseudo-cell -1. RecustomizeNow clears the set once the
// installed overlay has caught up with the current graph.
func (s *Server) notePendingCells(changes []roadnet.ArcWeightChange) {
	st := s.chSt.Load()
	if st == nil {
		return
	}
	cells := st.overlay.PartitionCells()
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	if s.pendingCells == nil {
		s.pendingCells = make(map[int]struct{})
	}
	for _, c := range changes {
		key := -1
		if cells > 0 {
			cf, bf := st.overlay.CellOfNode(c.From)
			ct, bt := st.overlay.CellOfNode(c.To)
			if !bf && !bt && cf == ct {
				key = cf
			}
		}
		s.pendingCells[key] = struct{}{}
	}
}

// clearPendingCells empties the dirty-layer set; called when the installed
// overlay matches the current graph again.
func (s *Server) clearPendingCells() {
	s.pendingMu.Lock()
	s.pendingCells = nil
	s.pendingMu.Unlock()
}

// pendingCellCount returns the number of distinct overlay layers dirtied by
// applied-but-not-yet-recustomized weight changes.
func (s *Server) pendingCellCount() int {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	return len(s.pendingCells)
}

// kickRecustomize starts one background re-customization when the installed
// overlay state is stale and able to be refreshed: a content-stale overlay
// needs the customization pass (customizable overlays only), while a
// generation-only staleness — an update that left the content checksum
// unchanged, like a no-op change or an A→B→A revert — only needs the
// engines rebound to the current generation, which works on any overlay. At
// most one goroutine runs at a time; redundant kicks (every stale-routed
// query issues one) are dropped. A content-stale witness-pruned overlay
// cannot be refreshed — the server keeps serving through the SSMD fallback,
// which overlay_stale_queries makes visible.
func (s *Server) kickRecustomize() {
	st := s.chSt.Load()
	if st == nil || s.mutable == nil {
		return
	}
	if contentStale := s.overlayStale(st); contentStale && !st.overlay.Customizable() {
		return // permanent fallback; RecustomizeNow reports it to direct callers
	} else if !contentStale && !s.engineStale(st) {
		return // fresh on both axes; nothing to do
	}
	if !s.recustomizing.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.recustomizing.Store(false)
		// Failures are counted (recustomize_failures) rather than returned —
		// there is no caller — and the server keeps answering through the
		// SSMD fallback, which stays correct on the current snapshot.
		_ = s.RecustomizeNow()
	}()
}

// RecustomizeNow synchronously refreshes the CH overlay's weight layer until
// it matches the current graph, swapping each refreshed overlay state in
// atomically, and returns when the installed overlay is fresh (or the server
// has nothing to refresh: no overlay, an immutable backend, or an already
// fresh overlay). Updates that land mid-refresh are absorbed by another
// round of the loop. It is safe to call concurrently with queries, updates
// and the background refresh; runs serialise internally.
func (s *Server) RecustomizeNow() error {
	s.recustomizeMu.Lock()
	defer s.recustomizeMu.Unlock()
	for {
		st := s.chSt.Load()
		if st == nil || s.mutable == nil {
			return nil
		}
		// Pin one snapshot for the whole round: the overlay is customized
		// for exactly this graph and bound to exactly this generation.
		snap := s.mutable.Snapshot()
		g := snap.Graph()
		if st.overlay.Checksum() == ch.GraphChecksum(g) {
			// Content already matches — the generation may still trail it
			// (a no-op update, or a revert that restored the exact weights
			// before this run got to them). The overlay is valid for this
			// generation by construction, so rebinding the engines is all
			// the refresh needed; without it the processors' Generational
			// check would refuse them forever.
			if gen := storage.GenerationOf(snap); st.engine.Generation() != gen {
				st.engine.BindGeneration(gen)
				st.mtm.BindGeneration(gen)
			}
			s.clearPendingCells()
			return nil
		}
		if !st.overlay.Customizable() {
			s.mRecustFail.Add(1)
			return fmt.Errorf("server: overlay is witness-pruned and cannot absorb weight updates; queries fall back to SSMD (rebuild with a customizable overlay to restore CH serving)")
		}
		start := time.Now()
		// Partitioned overlays diff the pinned snapshot against the weights
		// they were customized for and re-run only the touched cells (plus
		// the boundary top layer); unpartitioned ones — and the first
		// refresh of an overlay loaded from disk, which carries no
		// incremental state — take the full customization pass and report
		// stats.Full.
		fresh, stats, err := st.overlay.RecustomizeIncremental(g)
		if err != nil {
			s.mRecustFail.Add(1)
			return fmt.Errorf("server: re-customizing overlay: %w", err)
		}
		s.chSt.Store(s.newCHState(fresh, storage.GenerationOf(snap)))
		s.mRecustomize.Add(1)
		s.mCellsRecust.Add(int64(len(stats.Recustomized)))
		s.metrics.SetGauge("recustomize_last_ms", float64(time.Since(start).Microseconds())/1000)
		var worstCell time.Duration
		for _, d := range stats.CellDuration {
			if d > worstCell {
				worstCell = d
			}
		}
		// The slowest touched cell of the last run: with one goroutine per
		// cell this is the parallel pass's critical path, the number E17's
		// cell-locality speedup shows up in.
		s.metrics.SetGauge("recustomize_cell_last_ms", float64(worstCell.Microseconds())/1000)
		// Loop: another update may have landed while this round customized.
	}
}
