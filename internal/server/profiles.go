package server

import (
	"fmt"
	"sort"
	"sync"

	"opaque/internal/ch"
	"opaque/internal/costmodel"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// This file is the server side of precustomized weight-profile serving. A
// profile (costmodel.WeightProfile) is a deterministic reweighting of the
// startup metric — "the morning peak", "night free-flow" — and a profile
// query asks to be answered under that regime instead of the live metric.
// The server precustomizes one complete evaluation state per profile: the
// profile graph, an immutable accessor over it, and (when the server runs a
// CH strategy) a customized overlay weight layer sharing the base overlay's
// frozen topology (ch.ProfileSet) with engines and processors bound to it.
// Profile queries route onto that state with zero customization work on the
// query path, and — because the state is immutable — they keep full CH
// speed even while the live overlay is mid-re-customization under a heavy
// update stream.
//
// Profiles deliberately bind to the *startup* graph, not the live snapshot:
// they answer what a trip usually costs under a recurring regime, which the
// live traffic of the moment does not change. This is also what makes the
// layers precustomizable at all — a layer chasing the live metric would
// re-customize on every update, which is exactly the work profile serving
// exists to avoid.

// profileState is everything needed to evaluate queries under one profile.
type profileState struct {
	graph *roadnet.Graph
	acc   storage.Accessor
	// flat is the always-available processor (SSMD for CH-strategy servers,
	// the configured flat strategy otherwise); chProcessor/mtmProcessor are
	// set when the server serves through an overlay.
	flat         *search.Processor
	chProcessor  *search.Processor
	mtmProcessor *search.Processor
}

// profileCache resolves profile names to their precustomized states,
// building on demand and bounded by the layer LRU.
type profileCache struct {
	s    *Server
	defs map[string]costmodel.WeightProfile
	// layers is the LRU of customized overlay weight layers; nil when the
	// server serves without an overlay (states are then flat-only and cheap
	// enough to keep unbounded — one accessor and processor each).
	layers *ch.ProfileSet

	mu     sync.Mutex
	states map[string]*profileState
}

// initProfiles validates the profile configuration and builds the cache
// (and, with PrewarmProfiles, every layer). Called from New.
func (s *Server) initProfiles() error {
	if len(s.cfg.Profiles) == 0 {
		return nil
	}
	if s.mutable == nil {
		return fmt.Errorf("server: weight profiles require the in-memory backend (the paged simulation serves exactly one page layout)")
	}
	switch s.cfg.Strategy {
	case search.StrategyPairwiseALT, search.StrategyPairwiseAStar:
		return fmt.Errorf("server: weight profiles are unsupported under strategy %q — its heuristic bounds are admissible for the startup metric only", s.cfg.Strategy)
	}
	defs := make(map[string]costmodel.WeightProfile, len(s.cfg.Profiles))
	for _, p := range s.cfg.Profiles {
		if p.Name == "" {
			return fmt.Errorf("server: weight profile with empty name")
		}
		if _, dup := defs[p.Name]; dup {
			return fmt.Errorf("server: duplicate weight profile %q", p.Name)
		}
		defs[p.Name] = p
	}
	pc := &profileCache{s: s, defs: defs, states: make(map[string]*profileState)}
	if st := s.chSt.Load(); st != nil {
		if !st.overlay.Customizable() {
			return fmt.Errorf("server: weight profiles need a customizable overlay to precustomize layers for (this one is witness-pruned)")
		}
		capacity := s.cfg.ProfileCapacity
		if capacity <= 0 {
			capacity = len(defs)
		}
		layers, err := ch.NewProfileSet(st.overlay, capacity)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		// Layer evictions drop the derived state too. The hook runs under
		// the layer set's lock, which is only ever taken while pc.mu is
		// held (state() is the sole caller), so the plain delete is safe.
		layers.SetOnEvict(func(name string) { delete(pc.states, name) })
		pc.layers = layers
	}
	s.profiles = pc
	if s.cfg.PrewarmProfiles {
		names := make([]string, 0, len(defs))
		for name := range defs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if _, err := pc.state(name); err != nil {
				return fmt.Errorf("server: prewarming profile %q: %w", name, err)
			}
		}
	}
	return nil
}

// profileProcessor resolves the query's profile to a processor, building the
// profile state on first use (or after an LRU eviction). The returned
// processor never goes stale: its accessor is immutable and its engines are
// bound to that accessor's constant generation. The second return is the
// profile graph's weight-content checksum — the ContentSum replies under this
// profile are stamped with, so a fleet router can verify every shard answered
// a profile query from the same precustomized metric.
func (s *Server) profileProcessor(q protocol.ServerQuery) (*search.Processor, uint64, error) {
	if s.profiles == nil {
		return nil, 0, fmt.Errorf("query requests weight profile %q but the server has no profiles configured", q.Profile)
	}
	st, err := s.profiles.state(q.Profile)
	if err != nil {
		return nil, 0, err
	}
	sum := st.graph.ContentChecksum()
	if st.chProcessor == nil {
		return st.flat, sum, nil
	}
	switch s.cfg.Strategy {
	case StrategyCH:
		return st.chProcessor, sum, nil
	case StrategyCHMTM:
		return st.mtmProcessor, sum, nil
	case StrategyHybrid:
		if len(q.Sources)*len(q.Dests) <= s.chMaxPairs {
			return st.chProcessor, sum, nil
		}
		return st.mtmProcessor, sum, nil
	default:
		return st.flat, sum, nil
	}
}

// state returns the evaluation state for the named profile, counting
// profile_layer_hits/misses. Builds serialise behind the cache lock — with
// PrewarmProfiles (the intended deployment) on-demand builds only happen
// after LRU evictions.
func (pc *profileCache) state(name string) (*profileState, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if st, ok := pc.states[name]; ok {
		if pc.layers != nil {
			pc.layers.Layer(name) // LRU touch + layer hit accounting
		}
		pc.s.mProfileHits.Add(1)
		return st, nil
	}
	def, ok := pc.defs[name]
	if !ok {
		known := make([]string, 0, len(pc.defs))
		for n := range pc.defs {
			known = append(known, n)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("unknown weight profile %q (configured: %v)", name, known)
	}
	pc.s.mProfileMiss.Add(1)
	// Profiles reweight the startup graph — not the live snapshot — so the
	// layer stays valid for the server's lifetime (see the file comment).
	pg, err := def.Apply(pc.s.graph)
	if err != nil {
		return nil, fmt.Errorf("applying weight profile %q: %w", name, err)
	}
	var layer *ch.Overlay
	if pc.layers != nil {
		layer, err = pc.layers.Install(name, pg)
		if err != nil {
			return nil, fmt.Errorf("customizing layer for weight profile %q: %w", name, err)
		}
	}
	st := pc.s.newProfileState(pg, layer)
	pc.states[name] = st
	return st, nil
}

// layerCount returns how many profile states are currently resident.
func (pc *profileCache) layerCount() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.states)
}

// newProfileState derives the accessor, engines and processors for one
// profile graph. layer is nil for overlay-less servers. The profile accessor
// is a plain immutable MemoryGraph: its generation is constant 0, the
// engines bind to 0, and the state can therefore never fail the processors'
// staleness checks. No tree cache is attached — the server's cache keys
// trees by (source, generation) and every profile accessor reports
// generation 0, so sharing it would mix trees across metrics.
func (s *Server) newProfileState(pg *roadnet.Graph, layer *ch.Overlay) *profileState {
	acc := storage.NewMemoryGraph(pg)
	st := &profileState{graph: pg, acc: acc}

	flatStrategy := s.cfg.Strategy
	switch flatStrategy {
	case StrategyCH, StrategyCHMTM, StrategyHybrid:
		flatStrategy = search.StrategySSMD
	}
	flatOpts := []search.ProcessorOption{
		search.WithStrategy(flatStrategy),
		search.WithWorkspacePool(s.wsPool),
	}
	if s.cfg.Workers > 1 {
		flatOpts = append(flatOpts, search.WithWorkers(s.cfg.Workers))
	}
	if s.gate != nil {
		flatOpts = append(flatOpts, search.WithGate(s.gate))
	}
	st.flat = search.NewProcessor(acc, flatOpts...)

	if layer != nil {
		engine := ch.NewEngine(layer, s.wsPool)
		engine.BindGeneration(storage.GenerationOf(acc))
		mtm := ch.NewMTM(layer, s.wsPool)
		mtm.BindGeneration(storage.GenerationOf(acc))

		chOpts := []search.ProcessorOption{
			search.WithStrategy(search.StrategyPointEngine),
			search.WithPointEngine(engine),
			search.WithWorkspacePool(s.wsPool),
		}
		if s.cfg.Workers > 1 {
			chOpts = append(chOpts, search.WithWorkers(s.cfg.Workers))
		}
		if s.gate != nil {
			chOpts = append(chOpts, search.WithGate(s.gate))
		}
		st.chProcessor = search.NewProcessor(acc, chOpts...)

		mtmOpts := []search.ProcessorOption{
			search.WithStrategy(search.StrategyTableEngine),
			search.WithTableEngine(mtm),
			search.WithWorkspacePool(s.wsPool),
		}
		if s.gate != nil {
			mtmOpts = append(mtmOpts, search.WithGate(s.gate))
		}
		st.mtmProcessor = search.NewProcessor(acc, mtmOpts...)
	}
	return st
}

// ProfileLayerStats returns the profile layer cache counters (hits, misses,
// evictions, resident layers), or zeroes when the server has no profiles or
// serves them without an overlay.
func (s *Server) ProfileLayerStats() ch.ProfileSetStats {
	if s.profiles == nil {
		return ch.ProfileSetStats{}
	}
	if s.profiles.layers == nil {
		s.profiles.mu.Lock()
		defer s.profiles.mu.Unlock()
		return ch.ProfileSetStats{Layers: len(s.profiles.states)}
	}
	return s.profiles.layers.Stats()
}

// ProfileGraph returns the reweighted graph the named profile is served
// from, building the profile state if needed. Experiments use it as the
// reference metric for verifying profile query answers.
func (s *Server) ProfileGraph(name string) (*roadnet.Graph, error) {
	if s.profiles == nil {
		return nil, fmt.Errorf("server: no profiles configured")
	}
	st, err := s.profiles.state(name)
	if err != nil {
		return nil, err
	}
	return st.graph, nil
}
