package server

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"opaque/internal/ch"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
)

// gridTestGraph builds a w×h lattice with integer costs. Its spatial
// coherence is what the partition tests need: an inertial cut of a lattice
// has large cell interiors, so arcs exist strictly inside distinct cells.
func gridTestGraph(t *testing.T, w, h int, seed int64) *roadnet.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.NewGraph(w*h, 4*w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddNode(float64(x)*100, float64(y)*100)
		}
	}
	id := func(x, y int) roadnet.NodeID { return roadnet.NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.MustAddBidirectionalEdge(id(x, y), id(x+1, y), float64(1+rng.Intn(9)))
			}
			if y+1 < h {
				g.MustAddBidirectionalEdge(id(x, y), id(x, y+1), float64(1+rng.Intn(9)))
			}
		}
	}
	g.Freeze()
	return g
}

// TestPartitionedServerMatchesReference: all three overlay strategies on a
// partition-aware server serve reference-Dijkstra distances, before and
// after weight updates absorbed by cell-local re-customization, and the
// partition metrics report the cell work.
func TestPartitionedServerMatchesReference(t *testing.T) {
	for _, strat := range []search.Strategy{StrategyCH, StrategyCHMTM, StrategyHybrid} {
		g := gridTestGraph(t, 12, 10, 601)
		cfg := DefaultConfig()
		cfg.Strategy = strat
		cfg.BuildCH = true
		cfg.PartitionCells = 6
		s := MustNew(g, cfg)
		if got := s.Overlay().PartitionCells(); got != 6 {
			t.Fatalf("%s: overlay has %d cells, want 6", strat, got)
		}

		queries := []protocol.ServerQuery{
			{Sources: []roadnet.NodeID{0}, Dests: []roadnet.NodeID{119}},
			{Sources: []roadnet.NodeID{1, 12, 40}, Dests: []roadnet.NodeID{80, 117}},
			{Sources: []roadnet.NodeID{5, 6}, Dests: []roadnet.NodeID{7}},
		}
		for _, q := range queries {
			reply, err := s.Evaluate(q)
			if err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			checkReplyMatchesGraph(t, s.Graph(), reply)
		}
		if got := s.Metrics().Gauge("partition_cells"); got != 6 {
			t.Fatalf("%s: partition_cells gauge = %v, want 6", strat, got)
		}

		rng := rand.New(rand.NewSource(602))
		for round := 0; round < 3; round++ {
			cur := s.Graph()
			var changes []roadnet.ArcWeightChange
			for i := 0; i < 4; i++ {
				v := roadnet.NodeID(rng.Intn(cur.NumNodes()))
				arcs := cur.Arcs(v)
				if len(arcs) == 0 {
					continue
				}
				a := arcs[rng.Intn(len(arcs))]
				changes = append(changes, roadnet.ArcWeightChange{From: v, To: a.To, NewCost: float64(1 + rng.Intn(15))})
			}
			if _, err := s.UpdateWeights(changes); err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			if err := s.RecustomizeNow(); err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			for _, q := range queries {
				reply, err := s.Evaluate(q)
				if err != nil {
					t.Fatalf("%s: %v", strat, err)
				}
				checkReplyMatchesGraph(t, s.Graph(), reply)
			}
		}
		m := s.Metrics()
		if m.Counter("recustomize_runs") < 3 {
			t.Fatalf("%s: recustomize_runs = %d", strat, m.Counter("recustomize_runs"))
		}
		// A freshly built partitioned overlay is primed for incremental
		// refreshes, so the cell-local path ran and counted its cells.
		if m.Counter("cells_recustomized") < 1 {
			t.Fatalf("%s: cells_recustomized = %d, want >= 1", strat, m.Counter("cells_recustomized"))
		}
	}
}

// twoCellArcs finds two arcs lying strictly inside two *different* cells of
// the server's partitioned overlay (no boundary endpoints), so a weight flip
// on each lands in a distinct cell's weight layer.
func twoCellArcs(t *testing.T, s *Server) (a1, a2 roadnet.ArcWeightChange, c1, c2 int) {
	t.Helper()
	o := s.Overlay()
	g := s.Graph()
	found := map[int]roadnet.ArcWeightChange{}
	order := []int{}
	for v := 0; v < g.NumNodes(); v++ {
		cv, bv := o.CellOfNode(roadnet.NodeID(v))
		if bv {
			continue
		}
		if _, ok := found[cv]; ok {
			continue
		}
		for _, a := range g.Arcs(roadnet.NodeID(v)) {
			ct, bt := o.CellOfNode(a.To)
			if bt || ct != cv || a.To == roadnet.NodeID(v) {
				continue
			}
			found[cv] = roadnet.ArcWeightChange{From: roadnet.NodeID(v), To: a.To}
			order = append(order, cv)
			break
		}
		if len(order) == 2 {
			return found[order[0]], found[order[1]], order[0], order[1]
		}
	}
	t.Fatal("partition yielded fewer than two cells with interior arcs")
	return
}

// TestConcurrentUpdatesAndBatchesTwoCells extends the two-known-costs flip
// of TestConcurrentUpdatesAndBatches to two arcs in two different partition
// cells, flipped by two concurrent updaters while batches evaluate under
// -race. The served content is always one of four states (two costs per
// arc), and every returned table must match exactly one of the four
// reference tables — all cells of one snapshot, never a mixed-metric table,
// even while per-cell re-customizations run concurrently.
func TestConcurrentUpdatesAndBatchesTwoCells(t *testing.T) {
	g := gridTestGraph(t, 12, 10, 603)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyHybrid
	cfg.BuildCH = true
	cfg.PartitionCells = 6
	cfg.TreeCache = 16
	cfg.KeepLog = false
	s := MustNew(g, cfg)

	arc1, arc2, c1, c2 := twoCellArcs(t, s)
	if c1 == c2 {
		t.Fatalf("both flip arcs landed in cell %d", c1)
	}
	flips1 := [2]roadnet.ArcWeightChange{
		{From: arc1.From, To: arc1.To, NewCost: 3},
		{From: arc1.From, To: arc1.To, NewCost: 29},
	}
	flips2 := [2]roadnet.ArcWeightChange{
		{From: arc2.From, To: arc2.To, NewCost: 5},
		{From: arc2.From, To: arc2.To, NewCost: 31},
	}
	// Pin the initial state deterministically: both arcs at their first cost.
	if _, err := s.UpdateWeights([]roadnet.ArcWeightChange{flips1[0], flips2[0]}); err != nil {
		t.Fatal(err)
	}

	// The four reachable graph contents, as copy-on-write variants.
	var refGraphs [2][2]*roadnet.Graph
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			gg, err := s.Graph().WithUpdatedWeights([]roadnet.ArcWeightChange{flips1[i], flips2[j]})
			if err != nil {
				t.Fatal(err)
			}
			refGraphs[i][j] = gg
		}
	}

	queries := make([]protocol.ServerQuery, 10)
	rng := rand.New(rand.NewSource(604))
	for i := range queries {
		ns, nt := 1+rng.Intn(3), 1+rng.Intn(3)
		q := protocol.ServerQuery{QueryID: uint64(i + 1)}
		for j := 0; j < ns; j++ {
			q.Sources = append(q.Sources, roadnet.NodeID(rng.Intn(g.NumNodes())))
		}
		for j := 0; j < nt; j++ {
			q.Dests = append(q.Dests, roadnet.NodeID(rng.Intn(g.NumNodes())))
		}
		queries[i] = q
	}
	type key struct{ s, d roadnet.NodeID }
	var refs [2][2]map[key]float64
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			refs[i][j] = map[key]float64{}
			for _, q := range queries {
				for _, src := range q.Sources {
					for _, dst := range q.Dests {
						refs[i][j][key{src, dst}] = referenceDistance(t, refGraphs[i][j], src, dst)
					}
				}
			}
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for u, flips := range [][2]roadnet.ArcWeightChange{flips1, flips2} {
		wg.Add(1)
		go func(u int, flips [2]roadnet.ArcWeightChange) {
			defer wg.Done()
			next := 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.UpdateWeights([]roadnet.ArcWeightChange{flips[next]}); err != nil {
					t.Error(err)
					return
				}
				next = 1 - next
			}
		}(u, flips)
	}

	for round := 0; round < 6; round++ {
		results := s.EvaluateBatch(queries)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("round %d query %d: %v", round, i, r.Err)
			}
			matched := false
			for vi := 0; vi < 2 && !matched; vi++ {
				for vj := 0; vj < 2 && !matched; vj++ {
					ok := true
					for _, cand := range r.Reply.Paths {
						got := cand.Cost
						if len(cand.Nodes) == 0 && cand.Source != cand.Dest {
							got = math.Inf(1)
						}
						if got != refs[vi][vj][key{cand.Source, cand.Dest}] {
							ok = false
							break
						}
					}
					matched = ok
				}
			}
			if !matched {
				t.Fatalf("round %d query %d: table matches none of the four reachable generations (mixed-metric table)", round, i)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := s.RecustomizeNow(); err != nil {
		t.Fatal(err)
	}
	if err := s.Overlay().Matches(s.Graph()); err != nil {
		t.Fatalf("overlay not fresh after quiescence: %v", err)
	}
}

// TestPagedPartitionedLayerResidency: a paged deployment serving a
// partitioned overlay charges the buffer pool for the per-cell weight layers
// a query touches — synthetic pages after the graph's own — so overlay
// residency shows up in the same fault accounting as graph I/O.
func TestPagedPartitionedLayerResidency(t *testing.T) {
	g := gridTestGraph(t, 12, 10, 605)
	part, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	buildCfg := ch.DefaultBuildConfig()
	buildCfg.Partition = part
	overlay, err := ch.BuildWithConfig(g, buildCfg) // witness-pruned: paged servers never re-customize
	if err != nil {
		t.Fatal(err)
	}

	newServer := func(o *ch.Overlay) *Server {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyHybrid
		cfg.Paged = true
		cfg.BufferPages = 1024 // big enough that faults == distinct pages touched
		cfg.CHOverlay = o
		return MustNew(g, cfg)
	}
	flat, err := ch.Build(g)
	if err != nil {
		t.Fatal(err)
	}

	q := protocol.ServerQuery{Sources: []roadnet.NodeID{0, 1}, Dests: []roadnet.NodeID{118, 119}}

	sPart := newServer(overlay)
	sFlat := newServer(flat)
	rp, err := sPart.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesGraph(t, g, rp)
	rf, err := sFlat.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesGraph(t, g, rf)

	// Same graph, same page layout, same query: the partitioned server's
	// extra faults are exactly the overlay layer pages — at least the top
	// layer plus one cell layer (sources/dests are interior lattice corners
	// under this seed, but boundary-only is conceivable, hence >= 1).
	extra := sPart.IOStats().Faults - sFlat.IOStats().Faults
	if extra < 1 {
		t.Fatalf("partitioned paged server charged %d extra faults, want >= 1 (overlay layer pages)", extra)
	}
	// Re-running the identical query faults nothing: graph pages and layer
	// pages are all resident now.
	before := sPart.IOStats().Faults
	if _, err := sPart.Evaluate(q); err != nil {
		t.Fatal(err)
	}
	if after := sPart.IOStats().Faults; after != before {
		t.Fatalf("resident layers still faulted: %d → %d", before, after)
	}

	// Paged deployments stay immutable: updates are rejected even with a
	// partitioned overlay installed.
	if _, err := sPart.UpdateWeights([]roadnet.ArcWeightChange{doubleOneArc(t, g)}); err == nil {
		t.Fatal("paged partitioned server accepted a live weight update")
	}
}
