package server

import (
	"math"
	"testing"

	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
)

func TestServerWithALTLandmarks(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Strategy = search.StrategyPairwiseALT
	cfg.Landmarks = 4
	srv, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := MustNew(g, DefaultConfig())
	q := protocol.ServerQuery{Sources: []roadnet.NodeID{2, 40}, Dests: []roadnet.NodeID{300, 500}}
	a, err := srv.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ref.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	costs := func(r protocol.ServerReply) map[[2]roadnet.NodeID]float64 {
		m := map[[2]roadnet.NodeID]float64{}
		for _, c := range r.Paths {
			m[[2]roadnet.NodeID{c.Source, c.Dest}] = c.Cost
		}
		return m
	}
	ca, cb := costs(a), costs(b)
	for k, v := range cb {
		if math.Abs(ca[k]-v) > 1e-6 {
			t.Errorf("pair %v: ALT server cost %v, reference %v", k, ca[k], v)
		}
	}
}

func TestServerALTStrategyRequiresLandmarks(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Strategy = search.StrategyPairwiseALT
	cfg.Landmarks = 0
	if _, err := New(g, cfg); err == nil {
		t.Error("pairwise-alt strategy without landmarks accepted")
	}
}
