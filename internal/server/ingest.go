package server

import (
	"fmt"

	"opaque/internal/search"
	"opaque/internal/traffic"
)

// NewIngestor builds a streaming traffic ingestion pipeline in front of this
// server: raw ArcWeightChange events are validated at the boundary, coalesced
// last-write-wins into batches (cfg.MaxBatch / cfg.MaxDelay), applied through
// ApplyWeights — one snapshot swap per batch, not per event — and followed up
// by the pipelined re-customization worker, which folds however many batches
// land during one run into a single pending refresh from the freshest
// snapshot. The caller owns the returned Ingestor and must Close it; the
// server keeps a reference only to publish its counters (ingest_events,
// ingest_batches, ingest_coalesce_ratio, ingest_queue_depth).
//
// cfg.Topology defaults to the server's startup graph, so unknown-arc events
// are rejected per event at the boundary instead of failing whole batches at
// apply time. Like UpdateWeights, ingestion requires the in-memory backend
// and refuses the heuristic pairwise strategies; a witness-pruned overlay is
// refused too, because a sustained update stream would permanently park it
// on the SSMD fallback.
func (s *Server) NewIngestor(cfg traffic.Config) (*traffic.Ingestor, error) {
	if s.mutable == nil {
		return nil, fmt.Errorf("server: streaming ingestion requires the in-memory backend (paged deployments serve a frozen page layout)")
	}
	switch s.cfg.Strategy {
	case search.StrategyPairwiseALT, search.StrategyPairwiseAStar:
		return nil, fmt.Errorf("server: streaming ingestion is unsupported under strategy %q — its heuristic bounds are admissible for the startup metric only", s.cfg.Strategy)
	}
	var refresher traffic.Refresher
	if st := s.chSt.Load(); st != nil {
		if !st.overlay.Customizable() {
			return nil, fmt.Errorf("server: streaming ingestion needs a customizable overlay (this one is witness-pruned and cannot absorb weight updates)")
		}
		refresher = s
	}
	if cfg.Topology == nil {
		cfg.Topology = s.graph
	}
	in, err := traffic.NewIngestor(s, refresher, cfg)
	if err != nil {
		return nil, err
	}
	s.ingest.Store(in)
	return in, nil
}

// IngestStats returns the counters of the most recently created ingestion
// pipeline, or zeroes when none exists.
func (s *Server) IngestStats() traffic.Stats {
	if in := s.ingest.Load(); in != nil {
		return in.Stats()
	}
	return traffic.Stats{}
}

// OverlayFresh reports whether the installed overlay state matches the
// current graph on both axes (content checksum and engine generation).
// Servers without an overlay, or with an immutable backend, are trivially
// fresh. Experiments use it to measure the stale-query window under a
// sustained update stream.
func (s *Server) OverlayFresh() bool {
	st := s.chSt.Load()
	if st == nil {
		return true
	}
	return !s.overlayStale(st) && !s.engineStale(st)
}
