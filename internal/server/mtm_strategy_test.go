package server

import (
	"math"
	"testing"

	"opaque/internal/protocol"
	"opaque/internal/roadnet"
)

// TestStrategyCHMTMMatchesSSMD runs the same obfuscated queries through a
// ch-mtm server and a plain SSMD server and asserts identical candidate
// costs and reachability — the server-level face of the many-to-many
// correctness property.
func TestStrategyCHMTMMatchesSSMD(t *testing.T) {
	g := testGraph(t)
	mtmCfg := DefaultConfig()
	mtmCfg.Strategy = StrategyCHMTM
	mtmCfg.CHOverlay = chTestOverlay(t, g)
	mtmSrv := MustNew(g, mtmCfg)
	ssmdSrv := MustNew(g, DefaultConfig())

	queries := []protocol.ServerQuery{
		{QueryID: 1, Sources: []roadnet.NodeID{1, 50}, Dests: []roadnet.NodeID{200, 400, 600}},
		{QueryID: 2, Sources: []roadnet.NodeID{700}, Dests: []roadnet.NodeID{3}},
		{QueryID: 3, Sources: []roadnet.NodeID{10, 20, 30, 40}, Dests: []roadnet.NodeID{11, 21, 31, 41, 51, 61}},
		{QueryID: 4, Sources: []roadnet.NodeID{5, 5}, Dests: []roadnet.NodeID{5, 9}}, // duplicates and s==t cells
	}
	for _, q := range queries {
		got, err := mtmSrv.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ssmdSrv.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("query %d: %d paths vs %d", q.QueryID, len(got.Paths), len(want.Paths))
		}
		for i := range got.Paths {
			gp, wp := got.Paths[i], want.Paths[i]
			if gp.Source != wp.Source || gp.Dest != wp.Dest {
				t.Fatalf("query %d: candidate %d is for (%d,%d), want (%d,%d)", q.QueryID, i, gp.Source, gp.Dest, wp.Source, wp.Dest)
			}
			if (len(gp.Nodes) == 0) != (len(wp.Nodes) == 0) {
				t.Fatalf("query %d pair (%d,%d): reachability disagrees", q.QueryID, gp.Source, gp.Dest)
			}
			if len(gp.Nodes) != 0 && math.Abs(gp.Cost-wp.Cost) > 1e-9*(1+wp.Cost) {
				t.Fatalf("query %d pair (%d,%d): MTM cost %v, SSMD cost %v", q.QueryID, gp.Source, gp.Dest, gp.Cost, wp.Cost)
			}
		}
	}
	if n := mtmSrv.Metrics().Counter("mtm_queries"); n != int64(len(queries)) {
		t.Fatalf("mtm_queries = %d, want %d", n, len(queries))
	}
	if st := mtmSrv.MTMStats(); st.Tables != int64(len(queries)) {
		t.Fatalf("MTM Tables = %d, want %d", st.Tables, len(queries))
	}
}

// TestHybridCutoverBoundary pins the Config.CHMaxPairs routing semantics at
// the boundary: |S|·|T| of CHMaxPairs−1 and CHMaxPairs route pairwise to
// the overlay (the cutover is inclusive), CHMaxPairs+1 routes to the
// many-to-many engine.
func TestHybridCutoverBoundary(t *testing.T) {
	g := testGraph(t)
	overlay := chTestOverlay(t, g)
	const maxPairs = 6
	cases := []struct {
		name            string
		sources, dests  []roadnet.NodeID
		wantCH, wantMTM int64
	}{
		{"below (5 = CHMaxPairs-1)", []roadnet.NodeID{10}, []roadnet.NodeID{20, 30, 40, 50, 60}, 1, 0},
		{"at (6 = CHMaxPairs)", []roadnet.NodeID{10, 11}, []roadnet.NodeID{20, 30, 40}, 1, 0},
		{"above (7 = CHMaxPairs+1)", []roadnet.NodeID{10}, []roadnet.NodeID{20, 30, 40, 50, 60, 70, 80}, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Strategy = StrategyHybrid
			cfg.CHOverlay = overlay
			cfg.CHMaxPairs = maxPairs
			srv := MustNew(g, cfg)
			if _, err := srv.Evaluate(protocol.ServerQuery{Sources: tc.sources, Dests: tc.dests}); err != nil {
				t.Fatal(err)
			}
			if n := srv.Metrics().Counter("ch_queries"); n != tc.wantCH {
				t.Fatalf("ch_queries = %d, want %d", n, tc.wantCH)
			}
			if n := srv.Metrics().Counter("mtm_queries"); n != tc.wantMTM {
				t.Fatalf("mtm_queries = %d, want %d", n, tc.wantMTM)
			}
			if n := srv.Metrics().Counter("fallback_queries"); n != 0 {
				t.Fatalf("fallback_queries = %d, want 0 (hybrid with an overlay never routes to SSMD)", n)
			}
		})
	}
}

// TestHybridWithoutOverlayFallsBackToSSMD asserts the degraded hybrid mode:
// no overlay, no BuildCH — the server still comes up, every query runs on
// the SSMD processor (tree cache included), and the routing counters say so.
func TestHybridWithoutOverlayFallsBackToSSMD(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyHybrid
	cfg.TreeCache = 16
	srv, err := New(g, cfg)
	if err != nil {
		t.Fatalf("hybrid without overlay must degrade to SSMD, got error: %v", err)
	}
	if srv.Overlay() != nil {
		t.Fatal("server reports an overlay it was never given")
	}
	q := protocol.ServerQuery{Sources: []roadnet.NodeID{5, 6}, Dests: []roadnet.NodeID{300, 301, 302, 303, 304, 305, 306, 307, 308}}
	if _, err := srv.Evaluate(q); err != nil {
		t.Fatal(err)
	}
	if n := srv.Metrics().Counter("fallback_queries"); n != 1 {
		t.Fatalf("fallback_queries = %d, want 1", n)
	}
	if n := srv.Metrics().Counter("ch_queries") + srv.Metrics().Counter("mtm_queries"); n != 0 {
		t.Fatalf("overlay routing counters moved without an overlay: %d", n)
	}
	if st := srv.TreeCacheStats(); st.Hits+st.Misses == 0 {
		t.Fatal("fallback query bypassed the SSMD tree cache")
	}
	if st := srv.MTMStats(); st.Tables != 0 || st.BucketEntries != 0 {
		t.Fatalf("MTMStats without an overlay = %+v, want zeroes", st)
	}
}

// TestMTMMetricsSurfaced asserts the bucket-engine instrumentation reaches
// the metrics registry the periodic stats log reads.
func TestMTMMetricsSurfaced(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyCHMTM
	cfg.CHOverlay = chTestOverlay(t, g)
	srv := MustNew(g, cfg)
	if _, err := srv.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{1, 2, 3}, Dests: []roadnet.NodeID{500, 501, 502, 503}}); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	st := srv.MTMStats()
	if st.Tables != 1 || st.BucketEntries == 0 || st.BucketEntriesScanned == 0 || st.ArenaHighWater == 0 {
		t.Fatalf("MTM stats after one table: %+v", st)
	}
	if got := m.Gauge("mtm_tables"); got != float64(st.Tables) {
		t.Fatalf("mtm_tables gauge = %v, engine says %d", got, st.Tables)
	}
	if got := m.Gauge("mtm_bucket_entries"); got != float64(st.BucketEntries) {
		t.Fatalf("mtm_bucket_entries gauge = %v, engine says %d", got, st.BucketEntries)
	}
	if got := m.Gauge("mtm_bucket_entries_scanned"); got != float64(st.BucketEntriesScanned) {
		t.Fatalf("mtm_bucket_entries_scanned gauge = %v, engine says %d", got, st.BucketEntriesScanned)
	}
	if got := m.Gauge("mtm_arena_high_water"); got != float64(st.ArenaHighWater) {
		t.Fatalf("mtm_arena_high_water gauge = %v, engine says %d", got, st.ArenaHighWater)
	}
}
