// Package server implements the OPAQUE directions search server: it holds the
// full road map (optionally behind the paged storage simulation), evaluates
// obfuscated path queries Q(S, T) with the obfuscated path query processor of
// internal/search, keeps the query log an honest-but-curious operator would
// accumulate, and optionally exposes the whole thing over TCP for the
// networked deployment.
package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"opaque/internal/metrics"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// Config parameterises a Server.
type Config struct {
	// Strategy selects how Q(S,T) is evaluated (default: SSMD sharing).
	Strategy search.Strategy
	// Workers bounds per-query source-level parallelism (default 1).
	Workers int
	// Paged enables the disk simulation: the graph is laid out in
	// connectivity-clustered pages and accessed through an LRU buffer pool.
	Paged bool
	// PageConfig and BufferPages configure the simulation when Paged is set.
	PageConfig  storage.Config
	BufferPages int
	// KeepLog records every received query for adversary analysis.
	KeepLog bool
	// Landmarks enables ALT preprocessing with the given number of landmark
	// nodes (0 disables it). Required when Strategy is
	// search.StrategyPairwiseALT; harmless otherwise. Preprocessing runs
	// |Landmarks| full Dijkstra trees at startup and is charged to the
	// buffer pool when Paged is set, exactly like an offline index build.
	Landmarks int
}

// DefaultConfig returns an in-memory SSMD server with logging enabled.
func DefaultConfig() Config {
	return Config{
		Strategy:    search.StrategySSMD,
		Workers:     1,
		Paged:       false,
		PageConfig:  storage.DefaultConfig(),
		BufferPages: 256,
		KeepLog:     true,
	}
}

// LogEntry is one obfuscated query as the server saw it — the only
// information the semi-trusted operator ever receives about user intent.
type LogEntry struct {
	QueryID uint64
	Sources []roadnet.NodeID
	Dests   []roadnet.NodeID
}

// Server is the directions search server.
type Server struct {
	graph     *roadnet.Graph
	acc       storage.Accessor
	pool      *storage.BufferPool
	processor *search.Processor
	cfg       Config

	mu      sync.Mutex
	log     []LogEntry
	queryID atomic.Uint64

	// accumulated processing statistics
	statsMu     sync.Mutex
	totalStats  search.Stats
	queriesDone int

	metrics *metrics.Registry
}

// New builds a server over graph g according to cfg.
func New(g *roadnet.Graph, cfg Config) (*Server, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("server: need a non-empty road map")
	}
	if !g.Frozen() {
		return nil, fmt.Errorf("server: graph must be frozen")
	}
	s := &Server{graph: g, cfg: cfg, metrics: metrics.NewRegistry()}
	if cfg.Paged {
		store, err := storage.Build(g, cfg.PageConfig)
		if err != nil {
			return nil, fmt.Errorf("server: building page store: %w", err)
		}
		bufferPages := cfg.BufferPages
		if bufferPages <= 0 {
			bufferPages = 256
		}
		pool, err := storage.NewBufferPool(bufferPages)
		if err != nil {
			return nil, fmt.Errorf("server: building buffer pool: %w", err)
		}
		s.pool = pool
		s.acc = storage.NewPagedGraph(store, pool)
	} else {
		s.acc = storage.NewMemoryGraph(g)
	}
	opts := []search.ProcessorOption{search.WithStrategy(cfg.Strategy)}
	if cfg.Workers > 1 {
		opts = append(opts, search.WithWorkers(cfg.Workers))
	}
	if cfg.Landmarks > 0 {
		lm, err := search.PrepareLandmarks(s.acc, cfg.Landmarks, search.LandmarksFarthest)
		if err != nil {
			return nil, fmt.Errorf("server: preparing ALT landmarks: %w", err)
		}
		opts = append(opts, search.WithLandmarks(lm))
	} else if cfg.Strategy == search.StrategyPairwiseALT {
		return nil, fmt.Errorf("server: strategy %q requires Landmarks > 0", cfg.Strategy)
	}
	s.processor = search.NewProcessor(s.acc, opts...)
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(g *roadnet.Graph, cfg Config) *Server {
	s, err := New(g, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Graph returns the server's road map.
func (s *Server) Graph() *roadnet.Graph { return s.graph }

// Accessor returns the accessor queries are evaluated against.
func (s *Server) Accessor() storage.Accessor { return s.acc }

// Evaluate processes one obfuscated path query and returns all candidate
// result paths. This is the entry point used both by the in-process
// deployment and by the TCP handler.
func (s *Server) Evaluate(q protocol.ServerQuery) (protocol.ServerReply, error) {
	if len(q.Sources) == 0 || len(q.Dests) == 0 {
		return protocol.ServerReply{}, fmt.Errorf("server: query %d has empty source or destination set", q.QueryID)
	}
	id := q.QueryID
	if id == 0 {
		id = s.queryID.Add(1)
	}
	if s.cfg.KeepLog {
		s.mu.Lock()
		s.log = append(s.log, LogEntry{
			QueryID: id,
			Sources: append([]roadnet.NodeID(nil), q.Sources...),
			Dests:   append([]roadnet.NodeID(nil), q.Dests...),
		})
		s.mu.Unlock()
	}
	var faultsBefore int64
	if s.pool != nil {
		faultsBefore = s.pool.Stats().Faults
	}
	start := time.Now()
	res, err := s.processor.Evaluate(q.Sources, q.Dests)
	if err != nil {
		s.metrics.Add("queries_failed", 1)
		return protocol.ServerReply{}, fmt.Errorf("server: evaluating query %d: %w", id, err)
	}
	s.metrics.Observe("query_latency", time.Since(start))
	s.metrics.Add("queries_processed", 1)
	s.metrics.Add("candidate_pairs", int64(len(q.Sources)*len(q.Dests)))
	s.metrics.Add("nodes_settled", int64(res.Stats.SettledNodes))
	reply := protocol.ServerReply{QueryID: id, SettledNodes: res.Stats.SettledNodes}
	if s.pool != nil {
		poolStats := s.pool.Stats()
		reply.PageFaults = poolStats.Faults - faultsBefore
		s.metrics.Add("page_faults", reply.PageFaults)
		s.metrics.SetGauge("buffer_hit_ratio", poolStats.HitRatio())
	}
	for i, src := range res.Sources {
		for j, dst := range res.Dests {
			reply.Paths = append(reply.Paths, protocol.CandidateFromPath(src, dst, res.Paths[i][j]))
		}
	}
	s.statsMu.Lock()
	s.totalStats = s.totalStats.Add(res.Stats)
	s.queriesDone++
	s.statsMu.Unlock()
	return reply, nil
}

// QueryLog returns a copy of the queries the server has observed.
func (s *Server) QueryLog() []LogEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]LogEntry(nil), s.log...)
}

// TotalStats returns the accumulated search statistics and the number of
// obfuscated queries processed.
func (s *Server) TotalStats() (search.Stats, int) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.totalStats, s.queriesDone
}

// IOStats returns the buffer-pool counters when the server runs the paged
// simulation, or zeroes otherwise.
func (s *Server) IOStats() storage.IOStats {
	if s.pool == nil {
		return storage.IOStats{}
	}
	return s.pool.Stats()
}

// ResetStats zeroes the accumulated statistics and the query log.
func (s *Server) ResetStats() {
	s.statsMu.Lock()
	s.totalStats = search.Stats{}
	s.queriesDone = 0
	s.statsMu.Unlock()
	s.mu.Lock()
	s.log = nil
	s.mu.Unlock()
	if s.pool != nil {
		s.pool.ResetStats()
	}
}

// Metrics returns the server's instrumentation registry (query counters,
// latency histogram, I/O gauges).
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// Handler returns a protocol.Handler that answers ServerQuery messages;
// anything else is rejected.
func (s *Server) Handler() protocol.Handler {
	return func(msg any) (any, error) {
		q, ok := msg.(protocol.ServerQuery)
		if !ok {
			return nil, fmt.Errorf("server: unexpected message type %T", msg)
		}
		return s.Evaluate(q)
	}
}

// Serve accepts obfuscator connections on ln until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	return protocol.ServeListener(ln, s.Handler())
}
