// Package server implements the OPAQUE directions search server: it holds the
// full road map (optionally behind the paged storage simulation), evaluates
// obfuscated path queries Q(S, T) with the obfuscated path query processor of
// internal/search, keeps the query log an honest-but-curious operator would
// accumulate, and optionally exposes the whole thing over TCP for the
// networked deployment.
//
// Two evaluation entry points are provided. Evaluate answers one obfuscated
// query; EvaluateBatch (engine.go) answers a whole batch on a worker pool,
// sharing SSMD spanning trees across queries through the tree cache and
// composing per-query parallelism under a server-wide concurrency gate.
// In-memory deployments additionally accept live weight updates
// (UpdateWeights, update.go): queries pin copy-on-write snapshots, caches
// invalidate by generation, and the CH overlay is re-customized in the
// background while stale-routed queries take the SSMD fallback. The
// hot path is free of global mutexes — the query log and statistics are
// striped across shards and metrics use atomic counters — and free of
// per-query label allocation: every search runs on an epoch-stamped
// workspace checked out of the server's search.WorkspacePool (see the "query
// hot path" notes in internal/search).
package server

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"opaque/internal/ch"
	"opaque/internal/costmodel"
	"opaque/internal/metrics"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
	"opaque/internal/traffic"
)

// Server-level evaluation strategies layered on top of the search package's.
// StrategyCH and StrategyCHMTM require a contraction-hierarchy overlay
// (Config.CHOverlay or Config.BuildCH); StrategyHybrid uses one when
// available and degrades to pure SSMD sharing when not.
const (
	// StrategyCH evaluates every (source, dest) pair of Q(S, T) on the
	// contraction-hierarchy overlay — the preprocessed bidirectional search
	// of internal/ch, typically an order of magnitude faster than flat
	// Dijkstra per pair on large maps.
	StrategyCH = search.Strategy("ch")
	// StrategyCHMTM evaluates every query with the many-to-many bucket
	// algorithm on the overlay (internal/ch's MTM): |S|+|T| upward sweeps
	// joined at bucket entries instead of |S|·|T| bidirectional searches —
	// the fastest engine for wide candidate tables.
	StrategyCHMTM = search.Strategy("ch-mtm")
	// StrategyHybrid routes each query by shape: point-ish queries (up to
	// Config.CHMaxPairs candidate pairs) go pairwise to the CH overlay,
	// wider obfuscated queries go to the many-to-many bucket engine. When
	// the server has no overlay at all, every query falls back to the SSMD
	// spanning-tree sharing (and the tree cache, when enabled).
	StrategyHybrid = search.Strategy("hybrid")
)

// Config parameterises a Server.
type Config struct {
	// Strategy selects how Q(S,T) is evaluated (default: SSMD sharing).
	// Besides the search-package strategies, the server accepts StrategyCH,
	// StrategyCHMTM and StrategyHybrid, which run on the
	// contraction-hierarchy overlay.
	Strategy search.Strategy
	// Workers bounds per-query source-level parallelism (default 1).
	Workers int
	// BatchWorkers bounds how many queries of one EvaluateBatch call run
	// concurrently (default: GOMAXPROCS). Together with Workers it defines
	// the batch engine's parallelism: BatchWorkers queries in flight, each
	// fanning out up to Workers per-source searches.
	BatchWorkers int
	// MaxConcurrentSearches caps the total number of per-source searches in
	// flight across all queries and batches, composing Workers ×
	// BatchWorkers under one server-wide semaphore so large batches cannot
	// oversubscribe the machine. 0 means no cap.
	MaxConcurrentSearches int
	// TreeCache enables the SSMD tree cache with capacity for that many
	// settled spanning trees (see search.TreeCache): obfuscated queries
	// whose source sets overlap reuse each other's Dijkstra trees instead
	// of recomputing them. 0 disables the cache. Only StrategySSMD benefits.
	// Each cached tree costs O(nodes) memory. The cache changes reported
	// search statistics (cache hits count only incremental work) but never
	// the returned paths.
	TreeCache int
	// Paged enables the disk simulation: the graph is laid out in
	// connectivity-clustered pages and accessed through an LRU buffer pool.
	Paged bool
	// PageConfig and BufferPages configure the simulation when Paged is set.
	PageConfig  storage.Config
	BufferPages int
	// KeepLog records every received query for adversary analysis.
	KeepLog bool
	// Landmarks enables ALT preprocessing with the given number of landmark
	// nodes (0 disables it). Required when Strategy is
	// search.StrategyPairwiseALT; harmless otherwise. Preprocessing runs
	// |Landmarks| full Dijkstra trees at startup and is charged to the
	// buffer pool when Paged is set, exactly like an offline index build.
	Landmarks int
	// CHOverlay installs a prebuilt contraction-hierarchy overlay (usually
	// loaded from a cmd/opaque-preprocess file); it must Match the server's
	// graph. Required by StrategyCH and StrategyCHMTM unless BuildCH is
	// set; optional for StrategyHybrid, which falls back to pure SSMD
	// sharing without one.
	CHOverlay *ch.Overlay
	// BuildCH contracts the graph at startup when no CHOverlay is given —
	// the in-process equivalent of running cmd/opaque-preprocess. Expect
	// seconds of startup work on large maps; persisted overlays skip it.
	BuildCH bool
	// PartitionCells makes the startup contraction partition-aware: the
	// road map is cut into this many spatial cells
	// (roadnet.BuildPartition) and contracted cell by cell with boundary
	// nodes last, so live weight updates re-customize only the touched
	// cells' weight layers (ch.RecustomizeIncremental) instead of the whole
	// overlay, and paged deployments page overlay weight layers per cell.
	// 0 or 1 keeps the flat single-layer contraction. Ignored unless the
	// overlay is built at startup (BuildCH without CHOverlay) — a loaded
	// CHOverlay carries its own partition, or none.
	PartitionCells int
	// Profiles precustomizes one overlay weight layer (and one evaluation
	// state) per named weight profile — deterministic reweightings of the
	// startup metric, typically costmodel.TimeOfDayProfiles(). Queries
	// select a profile with protocol.ServerQuery.Profile and are answered
	// from its precustomized layer with zero customization work on the query
	// path; live weight updates never touch profile layers (profiles answer
	// "what does this trip usually cost at 8am" over the reference metric,
	// not the live one). Requires the in-memory backend and, like live
	// updates, refuses the heuristic pairwise strategies whose bounds are
	// only admissible for the startup metric. With a CH strategy the overlay
	// must be customizable.
	Profiles []costmodel.WeightProfile
	// ProfileCapacity bounds how many profile layers stay hot behind the
	// LRU (0 = all configured profiles). Evicted layers rebuild on demand,
	// paying one customization pass.
	ProfileCapacity int
	// PrewarmProfiles builds every configured profile layer during New, so
	// the first query of each profile pays nothing. Off, layers build on
	// first use.
	PrewarmProfiles bool
	// CHMaxPairs is the StrategyHybrid cutover, with *inclusive* pairwise
	// semantics: queries with |S|·|T| ≤ CHMaxPairs are evaluated pairwise
	// on the CH overlay, queries with |S|·|T| > CHMaxPairs go to the
	// many-to-many bucket engine (or to the SSMD processor when the server
	// has no overlay). 0 means DefaultCHMaxPairs. Ignored by other
	// strategies.
	CHMaxPairs int
}

// DefaultCHMaxPairs is the hybrid cutover used when Config.CHMaxPairs is 0:
// obfuscated queries up to this many candidate pairs (inclusive) run
// pairwise on the CH overlay, whose bidirectional stopping rule prunes each
// individual search; strictly wider tables go to the many-to-many bucket
// engine, whose |S|+|T| exhaustive sweeps amortise across cells. Experiment
// E15 measures the crossover this constant encodes: MTM is fastest from
// 2×2 tables upward on both measured graph scales and pairwise wins only
// true point queries, so the default keeps just the point-ish shapes
// (1×1 … 2×2, where the two engines are within noise of each other)
// on the pairwise engine.
const DefaultCHMaxPairs = 4

// DefaultConfig returns an in-memory SSMD server with logging enabled. The
// tree cache is off by default so single-query experiments report cold-search
// work; batch deployments enable it via TreeCache.
func DefaultConfig() Config {
	return Config{
		Strategy:    search.StrategySSMD,
		Workers:     1,
		Paged:       false,
		PageConfig:  storage.DefaultConfig(),
		BufferPages: 256,
		KeepLog:     true,
	}
}

// LogEntry is one obfuscated query as the server saw it — the only
// information the semi-trusted operator ever receives about user intent.
type LogEntry struct {
	QueryID uint64
	Sources []roadnet.NodeID
	Dests   []roadnet.NodeID
	// Profile is the weight profile the query asked for ("" = live metric).
	// It is part of what the operator legitimately observes.
	Profile string
}

// chState bundles everything derived from one contraction-hierarchy overlay:
// the overlay itself, the two engines bound to it, and the processors that
// route queries onto them. The server holds the current state behind one
// atomic pointer so a background re-customization swaps a complete,
// consistent replacement in one store — queries either see the old state
// (and its staleness is caught by the routing check or the engines' own
// verification) or the new one, never a half-installed mix.
type chState struct {
	overlay      *ch.Overlay
	engine       *ch.Engine
	mtm          *ch.MTM
	chProcessor  *search.Processor
	mtmProcessor *search.Processor
}

// Server is the directions search server.
type Server struct {
	graph     *roadnet.Graph
	acc       storage.Accessor
	pool      *storage.BufferPool
	processor *search.Processor
	// mutable is the live-update view of the accessor — non-nil exactly for
	// in-memory deployments, where UpdateWeights is supported. Paged
	// deployments serve the page layout they were built over and reject
	// updates.
	mutable *storage.MutableGraph
	// layerPageBase is the first synthetic page ID of the per-cell overlay
	// weight layers in paged deployments: the graph's own pages occupy
	// [0, layerPageBase), cell c's weight layer is page layerPageBase+c and
	// the boundary top layer is page layerPageBase+cells. 0 when not paged.
	layerPageBase int
	// chSt is the current overlay state (see chState), nil when the server
	// runs without an overlay. Replaced wholesale by re-customization.
	chSt       atomic.Pointer[chState]
	chMaxPairs int
	// recustomizeMu serialises re-customization runs; recustomizing
	// additionally dedupes background kicks so at most one goroutine is ever
	// spawned at a time.
	recustomizeMu sync.Mutex
	recustomizing atomic.Bool
	// pendingCells is the union of overlay weight layers dirtied by applied
	// weight changes that no completed re-customization has covered yet
	// (cell index, or -1 for the boundary top layer / a flat overlay). It
	// feeds the recustomize_pending_cells gauge and empties when the
	// installed overlay catches up with the current graph.
	pendingMu    sync.Mutex
	pendingCells map[int]struct{}
	// ingest is the most recently created streaming ingestion pipeline
	// (NewIngestor), held for metrics publication only.
	ingest atomic.Pointer[traffic.Ingestor]
	// profiles holds the precustomized weight-profile states, nil when
	// Config.Profiles is empty.
	profiles *profileCache
	cache    *search.TreeCache
	gate     search.Gate
	// wsPool owns the epoch-stamped search workspaces every query of this
	// server runs on: batch workers and per-query source fan-out all check
	// workspaces out of this one pool, so steady-state evaluation performs
	// no per-query label allocation no matter how traffic is shaped.
	wsPool *search.WorkspacePool
	cfg    Config

	log     shardedLog
	queryID atomic.Uint64
	stats   shardedStats

	metrics *metrics.Registry
	// pre-resolved metric handles so the hot path never touches the
	// registry map.
	mQueries      *metrics.Counter
	mFailed       *metrics.Counter
	mPairs        *metrics.Counter
	mSettled      *metrics.Counter
	mBatches      *metrics.Counter
	mBatchQueries *metrics.Counter
	mCHQueries    *metrics.Counter
	mMTMQueries   *metrics.Counter
	mFallback     *metrics.Counter
	mStaleQueries *metrics.Counter
	mWeightUpd    *metrics.Counter
	mRecustomize  *metrics.Counter
	mRecustFail   *metrics.Counter
	mCellsRecust  *metrics.Counter
	mProfileHits  *metrics.Counter
	mProfileMiss  *metrics.Counter
	hLatency      *metrics.Histogram
	hBatchLatency *metrics.Histogram
}

// New builds a server over graph g according to cfg.
func New(g *roadnet.Graph, cfg Config) (*Server, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, fmt.Errorf("server: need a non-empty road map")
	}
	if !g.Frozen() {
		return nil, fmt.Errorf("server: graph must be frozen")
	}
	s := &Server{graph: g, cfg: cfg, metrics: metrics.NewRegistry()}
	s.mQueries = s.metrics.CounterVar("queries_processed")
	s.mFailed = s.metrics.CounterVar("queries_failed")
	s.mPairs = s.metrics.CounterVar("candidate_pairs")
	s.mSettled = s.metrics.CounterVar("nodes_settled")
	s.mBatches = s.metrics.CounterVar("batches_processed")
	s.mBatchQueries = s.metrics.CounterVar("batch_queries")
	s.mCHQueries = s.metrics.CounterVar("ch_queries")
	s.mMTMQueries = s.metrics.CounterVar("mtm_queries")
	s.mFallback = s.metrics.CounterVar("fallback_queries")
	s.mStaleQueries = s.metrics.CounterVar("overlay_stale_queries")
	s.mWeightUpd = s.metrics.CounterVar("weight_updates")
	s.mRecustomize = s.metrics.CounterVar("recustomize_runs")
	s.mRecustFail = s.metrics.CounterVar("recustomize_failures")
	s.mCellsRecust = s.metrics.CounterVar("cells_recustomized")
	s.mProfileHits = s.metrics.CounterVar("profile_layer_hits")
	s.mProfileMiss = s.metrics.CounterVar("profile_layer_misses")
	s.hLatency = s.metrics.HistogramVar("query_latency")
	s.hBatchLatency = s.metrics.HistogramVar("batch_latency")
	if cfg.Paged {
		store, err := storage.Build(g, cfg.PageConfig)
		if err != nil {
			return nil, fmt.Errorf("server: building page store: %w", err)
		}
		bufferPages := cfg.BufferPages
		if bufferPages <= 0 {
			bufferPages = 256
		}
		pool, err := storage.NewBufferPool(bufferPages)
		if err != nil {
			return nil, fmt.Errorf("server: building buffer pool: %w", err)
		}
		s.pool = pool
		s.acc = storage.NewPagedGraph(store, pool)
		// Overlay weight layers page through the same pool as the graph:
		// they get synthetic page IDs right after the graph's own pages.
		s.layerPageBase = store.NumPages()
	} else {
		// In-memory deployments serve through the mutable weight view, so
		// UpdateWeights works out of the box: queries pin immutable snapshots
		// (the processors do this per evaluation), updates swap the current
		// one atomically.
		s.mutable = storage.NewMutableGraph(g)
		s.acc = s.mutable
	}
	s.wsPool = search.NewWorkspacePool()

	// The CH strategies are server-level: queries route between the pairwise
	// overlay processor, the many-to-many overlay processor and the regular
	// multi-source processor, which keeps SSMD sharing for whatever the
	// overlay does not take (and for hybrid servers running without one).
	useCH := cfg.Strategy == StrategyCH || cfg.Strategy == StrategyCHMTM || cfg.Strategy == StrategyHybrid
	procStrategy := cfg.Strategy
	if useCH {
		procStrategy = search.StrategySSMD
	}

	opts := []search.ProcessorOption{
		search.WithStrategy(procStrategy),
		search.WithWorkspacePool(s.wsPool),
	}
	if cfg.Workers > 1 {
		opts = append(opts, search.WithWorkers(cfg.Workers))
	}
	if cfg.TreeCache > 0 {
		s.cache = search.NewTreeCacheWithPool(cfg.TreeCache, s.wsPool)
		opts = append(opts, search.WithTreeCache(s.cache))
	}
	if cfg.MaxConcurrentSearches > 0 {
		s.gate = search.NewGate(cfg.MaxConcurrentSearches)
		opts = append(opts, search.WithGate(s.gate))
	}
	if cfg.Landmarks > 0 {
		lm, err := search.PrepareLandmarks(s.acc, cfg.Landmarks, search.LandmarksFarthest)
		if err != nil {
			return nil, fmt.Errorf("server: preparing ALT landmarks: %w", err)
		}
		opts = append(opts, search.WithLandmarks(lm))
	} else if cfg.Strategy == search.StrategyPairwiseALT {
		return nil, fmt.Errorf("server: strategy %q requires Landmarks > 0", cfg.Strategy)
	}
	s.processor = search.NewProcessor(s.acc, opts...)

	if useCH {
		overlay := cfg.CHOverlay
		if overlay == nil && cfg.BuildCH {
			buildCfg := ch.DefaultBuildConfig()
			// A mutable deployment contracts customizable, so live weight
			// updates are absorbed by re-customization instead of leaving
			// the overlay permanently stale. The overlay carries more
			// shortcuts than a witness-pruned one; deployments that never
			// update weights can load a witness-pruned file instead.
			buildCfg.Customizable = s.mutable != nil
			if cfg.PartitionCells > 1 {
				part, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: cfg.PartitionCells})
				if err != nil {
					return nil, fmt.Errorf("server: partitioning road map: %w", err)
				}
				buildCfg.Partition = part
			}
			built, err := ch.BuildWithConfig(g, buildCfg)
			if err != nil {
				return nil, fmt.Errorf("server: building CH overlay: %w", err)
			}
			overlay = built
		}
		if overlay == nil {
			// Hybrid degrades gracefully to the SSMD processor — a replica
			// can come up before its overlay file is provisioned. The pure
			// overlay strategies have nothing to run on and must refuse.
			if cfg.Strategy != StrategyHybrid {
				return nil, fmt.Errorf("server: strategy %q requires a CHOverlay (load one built by opaque-preprocess) or BuildCH", cfg.Strategy)
			}
		} else {
			if err := overlay.Matches(g); err != nil {
				return nil, fmt.Errorf("server: installing CH overlay: %w", err)
			}
			s.chMaxPairs = cfg.CHMaxPairs
			if s.chMaxPairs <= 0 {
				s.chMaxPairs = DefaultCHMaxPairs
			}
			s.chSt.Store(s.newCHState(overlay, storage.GenerationOf(s.acc)))
		}
	}
	if err := s.initProfiles(); err != nil {
		return nil, err
	}
	return s, nil
}

// newCHState derives the engines and processors for one overlay, binding
// both engines to the accessor generation the overlay's weights are valid
// for. Called at startup and by every re-customization swap.
func (s *Server) newCHState(overlay *ch.Overlay, gen uint64) *chState {
	st := &chState{overlay: overlay}
	st.engine = ch.NewEngine(overlay, s.wsPool)
	st.engine.BindGeneration(gen)
	st.mtm = ch.NewMTM(overlay, s.wsPool)
	st.mtm.BindGeneration(gen)

	chOpts := []search.ProcessorOption{
		search.WithStrategy(search.StrategyPointEngine),
		search.WithPointEngine(st.engine),
		search.WithWorkspacePool(s.wsPool),
	}
	if s.cfg.Workers > 1 {
		chOpts = append(chOpts, search.WithWorkers(s.cfg.Workers))
	}
	if s.gate != nil {
		chOpts = append(chOpts, search.WithGate(s.gate))
	}
	st.chProcessor = search.NewProcessor(s.acc, chOpts...)

	mtmOpts := []search.ProcessorOption{
		search.WithStrategy(search.StrategyTableEngine),
		search.WithTableEngine(st.mtm),
		search.WithWorkspacePool(s.wsPool),
	}
	if s.gate != nil {
		mtmOpts = append(mtmOpts, search.WithGate(s.gate))
	}
	st.mtmProcessor = search.NewProcessor(s.acc, mtmOpts...)
	return st
}

// MustNew is New but panics on error.
func MustNew(g *roadnet.Graph, cfg Config) *Server {
	s, err := New(g, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Graph returns the server's road map — the current weight snapshot when
// the deployment is mutable (it changes identity on every UpdateWeights),
// the startup graph otherwise.
func (s *Server) Graph() *roadnet.Graph {
	if s.mutable != nil {
		return storage.SnapshotOf(s.mutable).Graph()
	}
	return s.graph
}

// Accessor returns the accessor queries are evaluated against.
func (s *Server) Accessor() storage.Accessor { return s.acc }

// Evaluate processes one obfuscated path query and returns all candidate
// result paths. This is the entry point used both by the in-process
// deployment and by the TCP handler; EvaluateBatch fans it out over a worker
// pool for whole batches.
func (s *Server) Evaluate(q protocol.ServerQuery) (protocol.ServerReply, error) {
	if len(q.Sources) == 0 || len(q.Dests) == 0 {
		return protocol.ServerReply{}, fmt.Errorf("server: query %d has empty source or destination set", q.QueryID)
	}
	id := q.QueryID
	if id == 0 {
		id = s.queryID.Add(1)
	}
	if s.cfg.KeepLog {
		s.log.append(LogEntry{
			QueryID: id,
			Sources: append([]roadnet.NodeID(nil), q.Sources...),
			Dests:   append([]roadnet.NodeID(nil), q.Dests...),
			Profile: q.Profile,
		})
	}
	var faultsBefore int64
	if s.pool != nil {
		faultsBefore = s.pool.Stats().Faults
	}
	start := time.Now()
	var res search.MSMDResult
	var ident replyIdentity
	var err error
	if q.Profile != "" {
		res, ident, err = s.evaluateProfile(q)
	} else {
		res, ident, err = s.evaluateLive(q)
	}
	if err != nil {
		s.mFailed.Add(1)
		return protocol.ServerReply{}, fmt.Errorf("server: evaluating query %d: %w", id, err)
	}
	s.hLatency.Observe(time.Since(start))
	s.mQueries.Add(1)
	s.mPairs.Add(int64(len(q.Sources) * len(q.Dests)))
	s.mSettled.Add(int64(res.Stats.SettledNodes))
	reply := protocol.ServerReply{
		QueryID:      id,
		SettledNodes: res.Stats.SettledNodes,
		Generation:   ident.generation,
		ContentSum:   ident.contentSum,
		Profile:      q.Profile,
		Degraded:     q.DistanceOnly,
	}
	if s.pool != nil {
		poolStats := s.pool.Stats()
		// Per-reply fault attribution is a window over the shared pool
		// counter: exact when queries run sequentially, an upper bound when
		// EvaluateBatch overlaps queries. The page_faults gauge mirrors the
		// pool's absolute counter, so the server-level total never
		// multi-counts a fault however many queries are in flight.
		reply.PageFaults = poolStats.Faults - faultsBefore
		s.metrics.SetGauge("page_faults", float64(poolStats.Faults))
		s.metrics.SetGauge("buffer_hit_ratio", poolStats.HitRatio())
	}
	if q.DistanceOnly {
		// Degraded answer: the |S|×|T| cost table without node sequences.
		for i, src := range res.Sources {
			for j, dst := range res.Dests {
				c := protocol.CandidatePath{Source: src, Dest: dst}
				if d := res.Dists[i][j]; !math.IsInf(d, 1) {
					c.Found = true
					c.Cost = d
				}
				reply.Paths = append(reply.Paths, c)
			}
		}
	} else {
		for i, src := range res.Sources {
			for j, dst := range res.Dests {
				reply.Paths = append(reply.Paths, protocol.CandidateFromPath(src, dst, res.Paths[i][j]))
			}
		}
	}
	s.stats.add(id, res.Stats)
	return reply, nil
}

// replyIdentity is the metric identity stamped on one reply: the data
// generation the query was evaluated under and the weight-content checksum of
// that snapshot. The zero value means unknown — the fleet router treats it as
// generation skew and retries rather than merging it.
type replyIdentity struct {
	generation uint64
	contentSum uint64
}

// liveIdentity returns the (generation, content checksum) pair of the metric
// live queries are admitted under right now. Mutable deployments read one
// pinned snapshot so the pair is consistent; immutable deployments report
// their constant identity.
func (s *Server) liveIdentity() (uint64, uint64) {
	if s.mutable == nil {
		return storage.GenerationOf(s.acc), ch.GraphChecksum(s.graph)
	}
	snap := s.mutable.Snapshot()
	return storage.GenerationOf(snap), ch.GraphChecksum(snap.Graph())
}

// procEvaluate runs one query on proc, taking the distance-only face when the
// query was shed to it.
func (s *Server) procEvaluate(proc *search.Processor, q protocol.ServerQuery) (search.MSMDResult, error) {
	if q.DistanceOnly {
		return proc.EvaluateDistances(q.Sources, q.Dests)
	}
	return proc.Evaluate(q.Sources, q.Dests)
}

// evaluateProfile answers one profile query from its precustomized state. The
// identity is trivially stable: profile accessors are immutable (generation
// 0) and the content checksum is the profile graph's.
func (s *Server) evaluateProfile(q protocol.ServerQuery) (search.MSMDResult, replyIdentity, error) {
	proc, contentSum, err := s.profileProcessor(q)
	if err != nil {
		return search.MSMDResult{}, replyIdentity{}, err
	}
	res, err := s.procEvaluate(proc, q)
	return res, replyIdentity{contentSum: contentSum}, err
}

// identityRetries bounds how many times evaluateLive discards an evaluation
// whose metric identity moved underneath it before stamping the reply
// unknown.
const identityRetries = 3

// evaluateLive answers one live-metric query and pins the identity of the
// metric that actually answered it. The identity is read before routing and
// re-read after evaluating: if the generation moved in between, a weight
// update raced the evaluation and the reply cannot honestly claim either
// identity — the evaluation is discarded (its route counter reversed) and
// retried. Under sustained churn the retry budget can exhaust; the reply is
// then stamped unknown (zero identity), which the fleet router refuses to
// merge — a shard under churn degrades to retries, never to a mixed-metric
// answer.
func (s *Server) evaluateLive(q protocol.ServerQuery) (search.MSMDResult, replyIdentity, error) {
	for attempt := 0; ; attempt++ {
		gen1, sum1 := s.liveIdentity()
		proc, routed := s.chooseProcessor(q)
		res, err := s.procEvaluate(proc, q)
		if err != nil && errors.Is(err, search.ErrStaleEngine) {
			// A weight update landed between routing and the engine's own
			// verification. The overlay answer was refused, nothing stale was
			// served; re-evaluate on the always-current SSMD processor and let
			// the background re-customization catch the overlay up. The
			// overlay route counter bumped at routing time is reversed so the
			// ch/mtm/fallback counters keep summing to the queries actually
			// served by each route.
			routed.Add(-1)
			s.mStaleQueries.Add(1)
			s.mFallback.Add(1)
			routed = s.mFallback
			s.kickRecustomize()
			res, err = s.procEvaluate(s.processor, q)
		}
		if err != nil {
			return res, replyIdentity{}, err
		}
		gen2, _ := s.liveIdentity()
		if gen1 == gen2 {
			// No update landed while evaluating: the evaluation pinned a
			// snapshot from this very window, so (gen1, sum1) is its identity.
			return res, replyIdentity{generation: gen1, contentSum: sum1}, nil
		}
		if attempt >= identityRetries {
			return res, replyIdentity{}, nil // unknown — router-side skew
		}
		routed.Add(-1) // discard: keep route counters = queries served
	}
}

// chooseProcessor routes one query between the regular processor and the two
// overlay processors. StrategyCH sends everything pairwise to the overlay
// and StrategyCHMTM everything to the many-to-many bucket engine.
// StrategyHybrid routes by shape: queries small enough
// (|S|·|T| ≤ CHMaxPairs, inclusive) that per-pair bidirectional searches
// prune hardest go pairwise, strictly wider tables go to the many-to-many
// engine, and — when the server has no overlay at all — everything keeps
// SSMD's per-source sharing. The ch_queries / mtm_queries / fallback_queries
// counters record the routing decisions.
//
// Before routing onto the overlay, its content checksum and the engines'
// bound generation are compared against the current graph's (O(1): all
// sides are cached or atomic). A stale overlay state — a live weight update
// moved the graph past it — routes the query to the SSMD fallback instead
// of serving distances from the dead metric, counts it in
// overlay_stale_queries, and kicks the background refresh that swaps a
// fresh overlay state in.
//
// The second return is the route counter this call bumped (mFallback on the
// fallback routes, never nil); evaluateLive reverses it when the evaluation
// is abandoned — the engine refused the query and the fallback re-served it,
// or an identity race discarded the attempt — so every route counter keeps
// summing to the queries its route actually served.
func (s *Server) chooseProcessor(q protocol.ServerQuery) (*search.Processor, *metrics.Counter) {
	st := s.chSt.Load()
	if st == nil {
		s.mFallback.Add(1)
		return s.processor, s.mFallback
	}
	if s.overlayStale(st) || s.engineStale(st) {
		s.mStaleQueries.Add(1)
		s.mFallback.Add(1)
		s.kickRecustomize()
		return s.processor, s.mFallback
	}
	s.chargeOverlayLayers(st, q)
	switch s.cfg.Strategy {
	case StrategyCH:
		s.mCHQueries.Add(1)
		return st.chProcessor, s.mCHQueries
	case StrategyCHMTM:
		s.mMTMQueries.Add(1)
		return st.mtmProcessor, s.mMTMQueries
	default: // StrategyHybrid
		if len(q.Sources)*len(q.Dests) <= s.chMaxPairs {
			s.mCHQueries.Add(1)
			return st.chProcessor, s.mCHQueries
		}
		s.mMTMQueries.Add(1)
		return st.mtmProcessor, s.mMTMQueries
	}
}

// chargeOverlayLayers charges the buffer pool for the overlay weight layers
// one query routed onto a partitioned overlay touches. An upward CH search
// from node v reads exactly two layers: v's cell layer (skipped when v is a
// boundary node — it starts directly in the top layer) and the boundary top
// layer, which every query needs. The layers occupy synthetic page IDs after
// the graph's own pages (see layerPageBase), so cell layers compete for
// buffer-pool residency with graph pages exactly like any other I/O the
// simulation accounts: a deployment whose traffic concentrates in a few
// cells keeps those layers resident, and the page_faults counter shows the
// paging cost of scattering queries across many cells. No-op for in-memory
// or unpartitioned deployments.
func (s *Server) chargeOverlayLayers(st *chState, q protocol.ServerQuery) {
	cells := st.overlay.PartitionCells()
	if s.pool == nil || cells == 0 {
		return
	}
	seen := make(map[int]struct{}, len(q.Sources)+len(q.Dests))
	charge := func(nodes []roadnet.NodeID) {
		for _, v := range nodes {
			c, boundary := st.overlay.CellOfNode(v)
			if boundary {
				continue
			}
			if _, dup := seen[c]; dup {
				continue
			}
			seen[c] = struct{}{}
			s.pool.Access(storage.PageID(s.layerPageBase + c))
		}
	}
	charge(q.Sources)
	charge(q.Dests)
	s.pool.Access(storage.PageID(s.layerPageBase + cells)) // boundary top layer
}

// overlayStale reports whether st's overlay content no longer matches the
// current graph. Immutable deployments (paged storage) can never go stale.
func (s *Server) overlayStale(st *chState) bool {
	if s.mutable == nil {
		return false
	}
	return st.overlay.Checksum() != ch.GraphChecksum(storage.SnapshotOf(s.mutable).Graph())
}

// engineStale reports whether st's engines are bound to a generation behind
// the accessor's current one. This can lag even when the content checksum
// matches (an update that did not change any cost still bumps the
// generation); the processors' search.Generational check would refuse such
// engines, so routing treats it as staleness and the refresh rebinds them.
func (s *Server) engineStale(st *chState) bool {
	if s.mutable == nil {
		return false
	}
	return st.engine.Generation() != storage.GenerationOf(s.mutable)
}

// Overlay returns the currently installed contraction-hierarchy overlay
// (after a weight update and re-customization, the freshly customized one),
// or nil when the server runs without an overlay.
func (s *Server) Overlay() *ch.Overlay {
	if st := s.chSt.Load(); st != nil {
		return st.overlay
	}
	return nil
}

// MTMStats returns the many-to-many bucket engine's counters (tables
// evaluated, bucket entries deposited/scanned, arena high-water mark), or
// zeroes when the server has no overlay installed. The counters reset when a
// re-customization swaps the engine.
func (s *Server) MTMStats() ch.MTMStats {
	if st := s.chSt.Load(); st != nil {
		return st.mtm.Stats()
	}
	return ch.MTMStats{}
}

// WorkspacePoolStats returns the checkout counters of the server's search
// workspace pool — every query, batch worker, cached tree and CH search of
// this server draws from it.
func (s *Server) WorkspacePoolStats() search.WorkspacePoolStats {
	return s.wsPool.Stats()
}

// QueryLog returns a copy of the queries the server has observed, ordered by
// query ID (admission order).
func (s *Server) QueryLog() []LogEntry {
	return s.log.snapshot()
}

// TotalStats returns the accumulated search statistics and the number of
// obfuscated queries processed.
func (s *Server) TotalStats() (search.Stats, int) {
	return s.stats.total()
}

// IOStats returns the buffer-pool counters when the server runs the paged
// simulation, or zeroes otherwise.
func (s *Server) IOStats() storage.IOStats {
	if s.pool == nil {
		return storage.IOStats{}
	}
	return s.pool.Stats()
}

// TreeCacheStats returns the SSMD tree cache counters, or zeroes when the
// cache is disabled.
func (s *Server) TreeCacheStats() search.TreeCacheStats {
	if s.cache == nil {
		return search.TreeCacheStats{}
	}
	return s.cache.Stats()
}

// ResetStats zeroes the accumulated statistics and the query log.
func (s *Server) ResetStats() {
	s.stats.reset()
	s.log.reset()
	if s.pool != nil {
		s.pool.ResetStats()
	}
}

// publishDerivedMetrics mirrors the tree cache and workspace pool counters
// into the metrics registry. Called per batch and on Metrics() reads rather
// than per query, so the per-query hot path stays free of the registry's
// gauge lock.
func (s *Server) publishDerivedMetrics() {
	if s.cache != nil {
		st := s.cache.Stats()
		s.metrics.SetGauge("tree_cache_hit_ratio", st.HitRatio())
		s.metrics.SetGauge("tree_cache_hits", float64(st.Hits))
		s.metrics.SetGauge("tree_cache_misses", float64(st.Misses))
		s.metrics.SetGauge("tree_cache_resumes", float64(st.Resumes))
		s.metrics.SetGauge("tree_cache_evictions", float64(st.Evictions))
		s.metrics.SetGauge("tree_cache_invalidations", float64(st.Invalidations))
	}
	if st := s.chSt.Load(); st != nil {
		mt := st.mtm.Stats()
		s.metrics.SetGauge("mtm_tables", float64(mt.Tables))
		s.metrics.SetGauge("mtm_bucket_entries", float64(mt.BucketEntries))
		s.metrics.SetGauge("mtm_bucket_entries_scanned", float64(mt.BucketEntriesScanned))
		s.metrics.SetGauge("mtm_arena_high_water", float64(mt.ArenaHighWater))
		s.metrics.SetGauge("overlay_generation", float64(st.engine.Generation()))
		s.metrics.SetGauge("partition_cells", float64(st.overlay.PartitionCells()))
	}
	s.metrics.SetGauge("graph_generation", float64(storage.GenerationOf(s.acc)))
	s.metrics.SetGauge("recustomize_pending_cells", float64(s.pendingCellCount()))
	if in := s.ingest.Load(); in != nil {
		ist := in.Stats()
		s.metrics.SetGauge("ingest_events", float64(ist.Events))
		s.metrics.SetGauge("ingest_batches", float64(ist.Batches))
		s.metrics.SetGauge("ingest_coalesce_ratio", ist.CoalesceRatio())
		s.metrics.SetGauge("ingest_queue_depth", float64(ist.QueueDepth))
	}
	if s.profiles != nil {
		s.metrics.SetGauge("profile_layers", float64(s.profiles.layerCount()))
	}
	ws := s.wsPool.Stats()
	s.metrics.SetGauge("workspace_gets", float64(ws.Gets))
	s.metrics.SetGauge("workspace_in_flight", float64(ws.InFlight()))
	s.metrics.SetGauge("workspace_fresh", float64(ws.Fresh))
	s.metrics.SetGauge("workspace_reuse_ratio", ws.ReuseRatio())
}

// Metrics returns the server's instrumentation registry (query counters,
// latency histograms, I/O, cache and workspace pool gauges).
func (s *Server) Metrics() *metrics.Registry {
	s.publishDerivedMetrics()
	return s.metrics
}

// Handler returns a protocol.Handler that answers ServerQuery, BatchQuery and
// WeightUpdate messages; anything else is rejected.
func (s *Server) Handler() protocol.Handler {
	return func(msg any) (any, error) {
		switch m := msg.(type) {
		case protocol.ServerQuery:
			return s.Evaluate(m)
		case protocol.BatchQuery:
			return s.evaluateBatchMessage(m), nil
		case protocol.WeightUpdate:
			return s.applyWeightUpdate(m)
		default:
			return nil, fmt.Errorf("server: unexpected message type %T", msg)
		}
	}
}

// applyWeightUpdate answers a wire WeightUpdate: apply the changes, kick the
// background re-customization, and acknowledge with the server's post-apply
// metric identity.
func (s *Server) applyWeightUpdate(m protocol.WeightUpdate) (protocol.WeightUpdateAck, error) {
	if _, err := s.UpdateWeights(m.Changes); err != nil {
		return protocol.WeightUpdateAck{}, err
	}
	gen, sum := s.liveIdentity()
	return protocol.WeightUpdateAck{UpdateID: m.UpdateID, Generation: gen, ContentSum: sum}, nil
}

// Serve accepts obfuscator connections on ln until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	return protocol.ServeListener(ln, s.Handler())
}
