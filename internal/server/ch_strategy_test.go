package server

import (
	"math"
	"testing"

	"opaque/internal/ch"
	"opaque/internal/gen"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// chTestOverlay builds the overlay for testGraph once per test binary; the
// contraction pass is the expensive part of these tests.
func chTestOverlay(t testing.TB, g *roadnet.Graph) *ch.Overlay {
	t.Helper()
	o, err := ch.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestStrategyCHMatchesSSMD runs the same obfuscated queries through a CH
// server and a plain SSMD server and asserts identical candidate costs and
// reachability — the server-level face of the CH correctness property.
func TestStrategyCHMatchesSSMD(t *testing.T) {
	g := testGraph(t)
	chCfg := DefaultConfig()
	chCfg.Strategy = StrategyCH
	chCfg.CHOverlay = chTestOverlay(t, g)
	chSrv := MustNew(g, chCfg)
	ssmdSrv := MustNew(g, DefaultConfig())

	queries := []protocol.ServerQuery{
		{QueryID: 1, Sources: []roadnet.NodeID{1, 50}, Dests: []roadnet.NodeID{200, 400, 600}},
		{QueryID: 2, Sources: []roadnet.NodeID{700}, Dests: []roadnet.NodeID{3}},
		{QueryID: 3, Sources: []roadnet.NodeID{10, 20, 30}, Dests: []roadnet.NodeID{11, 21, 31}},
	}
	for _, q := range queries {
		got, err := chSrv.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ssmdSrv.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("query %d: %d paths vs %d", q.QueryID, len(got.Paths), len(want.Paths))
		}
		for i := range got.Paths {
			gp, wp := got.Paths[i], want.Paths[i]
			if gp.Source != wp.Source || gp.Dest != wp.Dest {
				t.Fatalf("query %d: candidate %d is for (%d,%d), want (%d,%d)", q.QueryID, i, gp.Source, gp.Dest, wp.Source, wp.Dest)
			}
			if len(gp.Nodes) == 0 != (len(wp.Nodes) == 0) {
				t.Fatalf("query %d pair (%d,%d): reachability disagrees", q.QueryID, gp.Source, gp.Dest)
			}
			if len(gp.Nodes) != 0 && math.Abs(gp.Cost-wp.Cost) > 1e-9*(1+wp.Cost) {
				t.Fatalf("query %d pair (%d,%d): CH cost %v, SSMD cost %v", q.QueryID, gp.Source, gp.Dest, gp.Cost, wp.Cost)
			}
		}
	}
	if n := chSrv.Metrics().Counter("ch_queries"); n != int64(len(queries)) {
		t.Fatalf("ch_queries = %d, want %d", n, len(queries))
	}
}

// TestStrategyHybridRouting asserts the pair-count cutover: small queries
// route pairwise to the overlay, wide ones to the many-to-many bucket
// engine, and both produce correct results.
func TestStrategyHybridRouting(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyHybrid
	cfg.CHOverlay = chTestOverlay(t, g)
	cfg.CHMaxPairs = 4
	srv := MustNew(g, cfg)
	acc := storage.NewMemoryGraph(g)

	small := protocol.ServerQuery{QueryID: 1, Sources: []roadnet.NodeID{5}, Dests: []roadnet.NodeID{300, 301}}         // 2 pairs → pairwise CH
	large := protocol.ServerQuery{QueryID: 2, Sources: []roadnet.NodeID{5, 6}, Dests: []roadnet.NodeID{300, 301, 302}} // 6 pairs → MTM
	for _, q := range []protocol.ServerQuery{small, large} {
		reply, err := srv.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range reply.Paths {
			want, _, err := search.Dijkstra(acc, c.Source, c.Dest)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Nodes) != 0 && math.Abs(c.Cost-want.Cost) > 1e-9*(1+want.Cost) {
				t.Fatalf("pair (%d,%d): hybrid cost %v, Dijkstra %v", c.Source, c.Dest, c.Cost, want.Cost)
			}
		}
	}
	if n := srv.Metrics().Counter("ch_queries"); n != 1 {
		t.Fatalf("ch_queries = %d, want 1 (only the small query routes to pairwise CH)", n)
	}
	if n := srv.Metrics().Counter("mtm_queries"); n != 1 {
		t.Fatalf("mtm_queries = %d, want 1 (the wide query routes to the bucket engine)", n)
	}
	if st := srv.MTMStats(); st.Tables != 1 || st.BucketEntries == 0 {
		t.Fatalf("MTM engine stats do not reflect the wide query: %+v", st)
	}
}

// TestCHStrategyConfigValidation covers the overlay requirements: missing
// overlay without BuildCH, a mismatched overlay, and BuildCH building one.
func TestCHStrategyConfigValidation(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyCH
	if _, err := New(g, cfg); err == nil {
		t.Fatal("StrategyCH without overlay or BuildCH accepted")
	}
	otherCfg := gen.DefaultNetworkConfig()
	otherCfg.Nodes = 300
	otherCfg.Seed = 1234
	other := gen.MustGenerate(otherCfg)
	cfg.CHOverlay = chTestOverlay(t, other)
	if _, err := New(g, cfg); err == nil {
		t.Fatal("overlay for a different graph accepted")
	}
	cfg.CHOverlay = nil
	cfg.BuildCH = true
	srv, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Overlay() == nil {
		t.Fatal("BuildCH server has no overlay")
	}
	if srv.Overlay().NumNodes() != g.NumNodes() {
		t.Fatalf("built overlay covers %d nodes, graph has %d", srv.Overlay().NumNodes(), g.NumNodes())
	}
}

// TestWorkspacePoolStatsSurfaced asserts the pool counters climb with
// traffic and are mirrored into the metrics registry the periodic stats log
// reads.
func TestWorkspacePoolStatsSurfaced(t *testing.T) {
	g := testGraph(t)
	srv := MustNew(g, DefaultConfig())
	for i := 0; i < 5; i++ {
		if _, err := srv.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{roadnet.NodeID(i)}, Dests: []roadnet.NodeID{400}}); err != nil {
			t.Fatal(err)
		}
	}
	ws := srv.WorkspacePoolStats()
	if ws.Gets < 5 {
		t.Fatalf("pool Gets = %d after 5 queries, want ≥ 5", ws.Gets)
	}
	if ws.InFlight() != 0 {
		t.Fatalf("pool InFlight = %d at rest, want 0", ws.InFlight())
	}
	if ws.Puts != ws.Gets {
		t.Fatalf("pool Puts = %d, Gets = %d — a workspace leaked", ws.Puts, ws.Gets)
	}
	m := srv.Metrics()
	if got := m.Gauge("workspace_gets"); got != float64(ws.Gets) {
		t.Fatalf("workspace_gets gauge = %v, pool says %d", got, ws.Gets)
	}
	if m.Gauge("workspace_reuse_ratio") < 0 || m.Gauge("workspace_reuse_ratio") > 1 {
		t.Fatalf("workspace_reuse_ratio out of range: %v", m.Gauge("workspace_reuse_ratio"))
	}
}
