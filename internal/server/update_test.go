package server

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"opaque/internal/ch"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// updateTestGraph builds a small connected integer-cost graph.
func updateTestGraph(t *testing.T, n int, seed int64) *roadnet.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := roadnet.NewGraph(n, 4*n)
	for i := 0; i < n; i++ {
		g.AddNode(rng.Float64()*100, rng.Float64()*100)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.MustAddBidirectionalEdge(roadnet.NodeID(perm[i-1]), roadnet.NodeID(perm[i]), float64(1+rng.Intn(20)))
	}
	for i := 0; i < 2*n; i++ {
		g.MustAddEdge(roadnet.NodeID(rng.Intn(n)), roadnet.NodeID(rng.Intn(n)), float64(1+rng.Intn(20)))
	}
	g.Freeze()
	return g
}

// referenceDistance computes the current-graph distance with the reference
// Dijkstra, +Inf when unreachable.
func referenceDistance(t *testing.T, g *roadnet.Graph, s, d roadnet.NodeID) float64 {
	t.Helper()
	p, _, err := search.ReferenceDijkstra(storage.NewMemoryGraph(g), s, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) == 0 && s != d {
		return math.Inf(1)
	}
	return p.Cost
}

// doubleOneArc returns a weight change doubling the first arc of node 0.
func doubleOneArc(t *testing.T, g *roadnet.Graph) roadnet.ArcWeightChange {
	t.Helper()
	arcs := g.Arcs(0)
	if len(arcs) == 0 {
		t.Fatal("node 0 has no arcs")
	}
	return roadnet.ArcWeightChange{From: 0, To: arcs[0].To, NewCost: arcs[0].Cost*2 + 1}
}

// checkReplyMatchesGraph asserts every candidate distance of the reply
// equals the reference distance on g.
func checkReplyMatchesGraph(t *testing.T, g *roadnet.Graph, reply protocol.ServerReply) {
	t.Helper()
	for _, cand := range reply.Paths {
		want := referenceDistance(t, g, cand.Source, cand.Dest)
		got := cand.Cost
		if len(cand.Nodes) == 0 && cand.Source != cand.Dest {
			got = math.Inf(1)
		}
		if got != want {
			t.Fatalf("pair (%d,%d): served %v, current graph says %v", cand.Source, cand.Dest, got, want)
		}
	}
}

// TestHybridFallsBackOnStaleOverlay is the staleness regression test: a
// hybrid server whose overlay no longer checksum-matches the graph (weight
// mutated, overlay not yet refreshed) must serve current-graph distances via
// the SSMD fallback — never stale overlay distances. Pinned with a
// witness-pruned overlay, which can never be re-customized, so the overlay
// stays permanently stale and every post-update query must take the
// fallback.
func TestHybridFallsBackOnStaleOverlay(t *testing.T) {
	g := updateTestGraph(t, 60, 501)
	witness, err := ch.Build(g) // deliberately not customizable
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Strategy = StrategyHybrid
	cfg.CHOverlay = witness
	s := MustNew(g, cfg)

	q := protocol.ServerQuery{Sources: []roadnet.NodeID{1, 2}, Dests: []roadnet.NodeID{3}}
	reply, err := s.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesGraph(t, s.Graph(), reply)
	if got := s.Metrics().Counter("ch_queries"); got != 1 {
		t.Fatalf("pre-update hybrid query should route to CH, ch_queries = %d", got)
	}

	if _, err := s.UpdateWeights([]roadnet.ArcWeightChange{doubleOneArc(t, g)}); err != nil {
		t.Fatal(err)
	}
	cur := s.Graph()
	if cur == g {
		t.Fatal("UpdateWeights did not swap the served graph")
	}
	// Re-query: every candidate must reflect the *current* graph.
	reply, err = s.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesGraph(t, cur, reply)
	wide := protocol.ServerQuery{Sources: []roadnet.NodeID{1, 2, 4}, Dests: []roadnet.NodeID{3, 5, 6}}
	wreply, err := s.Evaluate(wide)
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesGraph(t, cur, wreply)

	m := s.Metrics()
	if got := m.Counter("overlay_stale_queries"); got < 2 {
		t.Fatalf("overlay_stale_queries = %d, want >= 2", got)
	}
	if got := m.Counter("ch_queries"); got != 1 {
		t.Fatalf("post-update queries still routed to the stale overlay (ch_queries = %d)", got)
	}
	// The witness overlay can never be refreshed; RecustomizeNow must say so.
	if err := s.RecustomizeNow(); err == nil {
		t.Fatal("RecustomizeNow on a witness-pruned overlay should report the permanent fallback")
	}
}

// TestUpdateRecustomizeRestoresOverlay: with a customizable overlay, a
// weight update diverts overlay traffic to the fallback only until
// re-customization swaps the fresh overlay in; afterwards CH routing resumes
// and all three overlay strategies serve current-graph distances.
func TestUpdateRecustomizeRestoresOverlay(t *testing.T) {
	for _, strat := range []search.Strategy{StrategyCH, StrategyCHMTM, StrategyHybrid} {
		g := updateTestGraph(t, 70, 502)
		cfg := DefaultConfig()
		cfg.Strategy = strat
		cfg.BuildCH = true
		s := MustNew(g, cfg)
		if !s.Overlay().Customizable() {
			t.Fatalf("%s: BuildCH on a mutable deployment should contract customizable", strat)
		}
		oldOverlay := s.Overlay()

		rng := rand.New(rand.NewSource(503))
		for round := 0; round < 3; round++ {
			cur := s.Graph()
			var changes []roadnet.ArcWeightChange
			for i := 0; i < 5; i++ {
				v := roadnet.NodeID(rng.Intn(cur.NumNodes()))
				arcs := cur.Arcs(v)
				if len(arcs) == 0 {
					continue
				}
				a := arcs[rng.Intn(len(arcs))]
				changes = append(changes, roadnet.ArcWeightChange{From: v, To: a.To, NewCost: float64(1 + rng.Intn(40))})
			}
			if _, err := s.UpdateWeights(changes); err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			if err := s.RecustomizeNow(); err != nil {
				t.Fatalf("%s: RecustomizeNow: %v", strat, err)
			}
			if s.Overlay() == oldOverlay {
				t.Fatalf("%s: re-customization did not swap the overlay", strat)
			}
			oldOverlay = s.Overlay()
			if err := s.Overlay().Matches(s.Graph()); err != nil {
				t.Fatalf("%s: refreshed overlay does not match current graph: %v", strat, err)
			}
			reply, err := s.Evaluate(protocol.ServerQuery{
				Sources: []roadnet.NodeID{1, 2, 7},
				Dests:   []roadnet.NodeID{3, 9},
			})
			if err != nil {
				t.Fatalf("%s: %v", strat, err)
			}
			checkReplyMatchesGraph(t, s.Graph(), reply)
		}
		m := s.Metrics()
		if got := m.Counter("recustomize_runs"); got < 3 {
			t.Fatalf("%s: recustomize_runs = %d, want >= 3", strat, got)
		}
		// After each explicit RecustomizeNow, queries must route onto the
		// overlay again, not the fallback.
		if got := m.Counter("ch_queries") + m.Counter("mtm_queries"); got < 3 {
			t.Fatalf("%s: overlay routing did not resume after refresh (ch+mtm = %d)", strat, got)
		}
	}
}

// TestNoOpUpdateRebindsEngines: an update that bumps the generation without
// changing any cost (a no-op change, or a revert restoring the exact old
// weights) must not strand the overlay behind the generation check — the
// refresh rebinds the engines instead of re-customizing, and CH routing
// resumes.
func TestNoOpUpdateRebindsEngines(t *testing.T) {
	g := updateTestGraph(t, 50, 509)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyCH
	cfg.BuildCH = true
	s := MustNew(g, cfg)
	q := protocol.ServerQuery{Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{2}}
	if _, err := s.Evaluate(q); err != nil {
		t.Fatal(err)
	}
	// First update normalises every parallel 0→to arc to one cost (a real
	// content change, absorbed by a re-customization); the second repeats it
	// verbatim — a pure generation bump with identical content.
	noop := roadnet.ArcWeightChange{From: 0, To: g.Arcs(0)[0].To, NewCost: 7}
	if _, err := s.UpdateWeights([]roadnet.ArcWeightChange{noop}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecustomizeNow(); err != nil {
		t.Fatal(err)
	}
	overlayBefore := s.Overlay()
	if _, err := s.UpdateWeights([]roadnet.ArcWeightChange{noop}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecustomizeNow(); err != nil {
		t.Fatal(err)
	}
	before := s.Metrics().Counter("ch_queries")
	for i := 0; i < 3; i++ {
		reply, err := s.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		checkReplyMatchesGraph(t, s.Graph(), reply)
	}
	if got := s.Metrics().Counter("ch_queries"); got != before+3 {
		t.Fatalf("CH routing did not resume after a no-op update: ch_queries went %d → %d", before, got)
	}
	if s.Overlay() != overlayBefore {
		t.Fatal("no-op update triggered a full re-customization instead of a rebind")
	}
}

// TestUpdateWeightsRejected pins the refusal paths: paged deployments and
// the heuristic pairwise strategies cannot absorb live updates, and invalid
// changes do not move the generation.
func TestUpdateWeightsRejected(t *testing.T) {
	g := updateTestGraph(t, 40, 504)

	pagedCfg := DefaultConfig()
	pagedCfg.Paged = true
	paged := MustNew(g, pagedCfg)
	if _, err := paged.UpdateWeights([]roadnet.ArcWeightChange{doubleOneArc(t, g)}); err == nil {
		t.Fatal("paged server accepted a live weight update")
	}

	altCfg := DefaultConfig()
	altCfg.Strategy = search.StrategyPairwiseALT
	altCfg.Landmarks = 2
	alt := MustNew(g, altCfg)
	if _, err := alt.UpdateWeights([]roadnet.ArcWeightChange{doubleOneArc(t, g)}); err == nil {
		t.Fatal("pairwise-alt server accepted a live weight update over its frozen landmark bounds")
	}

	astarCfg := DefaultConfig()
	astarCfg.Strategy = search.StrategyPairwiseAStar
	astar := MustNew(g, astarCfg)
	if _, err := astar.UpdateWeights([]roadnet.ArcWeightChange{doubleOneArc(t, g)}); err == nil {
		t.Fatal("pairwise-astar server accepted a live weight update over its startup-metric heuristic")
	}

	s := MustNew(g, DefaultConfig())
	if _, err := s.UpdateWeights([]roadnet.ArcWeightChange{{From: 0, To: 0, NewCost: -1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if gen := storage.GenerationOf(s.Accessor()); gen != 0 {
		t.Fatalf("failed update moved the generation to %d", gen)
	}
}

// TestConcurrentUpdatesAndBatches is the -race consistency test: batches
// evaluate while weight updates land concurrently, and every returned table
// must be internally consistent — all cells from one generation's graph,
// all-old or all-new, never mixed. With updates flipping a single arc
// between two costs, every consistent table matches exactly one of the two
// reference tables computed up front.
func TestConcurrentUpdatesAndBatches(t *testing.T) {
	g := updateTestGraph(t, 50, 505)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyHybrid
	cfg.BuildCH = true
	cfg.TreeCache = 16
	cfg.KeepLog = false
	s := MustNew(g, cfg)

	// The updater flips one arc between two fixed costs, so after the first
	// (synchronous) update the served graph content is always exactly one of
	// two states — a change overwrites every parallel arc of the pair with
	// the same value, making the flip content-deterministic.
	to := g.Arcs(0)[0].To
	changeA := roadnet.ArcWeightChange{From: 0, To: to, NewCost: 3}
	changeB := roadnet.ArcWeightChange{From: 0, To: to, NewCost: 29}
	gOld, err := s.Graph().WithUpdatedWeights([]roadnet.ArcWeightChange{changeA})
	if err != nil {
		t.Fatal(err)
	}
	gNew, err := gOld.WithUpdatedWeights([]roadnet.ArcWeightChange{changeB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.UpdateWeights([]roadnet.ArcWeightChange{changeA}); err != nil {
		t.Fatal(err)
	}

	queries := make([]protocol.ServerQuery, 12)
	rng := rand.New(rand.NewSource(506))
	for i := range queries {
		ns, nt := 1+rng.Intn(3), 1+rng.Intn(3)
		q := protocol.ServerQuery{QueryID: uint64(i + 1)}
		for j := 0; j < ns; j++ {
			q.Sources = append(q.Sources, roadnet.NodeID(rng.Intn(g.NumNodes())))
		}
		for j := 0; j < nt; j++ {
			q.Dests = append(q.Dests, roadnet.NodeID(rng.Intn(g.NumNodes())))
		}
		queries[i] = q
	}
	// Reference tables for both generations, computed before the race.
	type key struct{ s, d roadnet.NodeID }
	refOld := map[key]float64{}
	refNew := map[key]float64{}
	for _, q := range queries {
		for _, src := range q.Sources {
			for _, dst := range q.Dests {
				refOld[key{src, dst}] = referenceDistance(t, gOld, src, dst)
				refNew[key{src, dst}] = referenceDistance(t, gNew, src, dst)
			}
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		flip := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			c := changeA
			if flip {
				c = changeB
			}
			flip = !flip
			if _, err := s.UpdateWeights([]roadnet.ArcWeightChange{c}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for round := 0; round < 8; round++ {
		results := s.EvaluateBatch(queries)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("round %d query %d: %v", round, i, r.Err)
			}
			// Classify each candidate against both references; the whole
			// table must fit a single generation.
			okOld, okNew := true, true
			for _, cand := range r.Reply.Paths {
				got := cand.Cost
				if len(cand.Nodes) == 0 && cand.Source != cand.Dest {
					got = math.Inf(1)
				}
				k := key{cand.Source, cand.Dest}
				if got != refOld[k] {
					okOld = false
				}
				if got != refNew[k] {
					okNew = false
				}
			}
			if !okOld && !okNew {
				t.Fatalf("round %d query %d: table matches neither the old nor the new generation (mixed-generation evaluation)", round, i)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := s.RecustomizeNow(); err != nil {
		t.Fatal(err)
	}
	if err := s.Overlay().Matches(s.Graph()); err != nil {
		t.Fatalf("overlay not fresh after quiescence: %v", err)
	}
}

// TestEmptyQueryContract pins the unified empty-S/T contract across every
// server strategy and both processor entry points: an error wrapping
// search.ErrEmptyQuery, never a silent empty table.
func TestEmptyQueryContract(t *testing.T) {
	g := updateTestGraph(t, 30, 507)
	for _, strat := range []search.Strategy{
		search.StrategySSMD, search.StrategyPairwise, StrategyCH, StrategyCHMTM, StrategyHybrid,
	} {
		cfg := DefaultConfig()
		cfg.Strategy = strat
		cfg.BuildCH = strat == StrategyCH || strat == StrategyCHMTM || strat == StrategyHybrid
		s := MustNew(g, cfg)
		for _, q := range []protocol.ServerQuery{
			{Sources: nil, Dests: []roadnet.NodeID{1}},
			{Sources: []roadnet.NodeID{1}, Dests: nil},
			{},
		} {
			if _, err := s.Evaluate(q); err == nil {
				t.Fatalf("%s: empty query %v accepted", strat, q)
			}
		}
	}

	// Processor level: every strategy returns ErrEmptyQuery from both
	// Evaluate and EvaluateDistances; direct engine surfaces agree.
	acc := storage.NewMemoryGraph(g)
	o, err := ch.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	mtm := ch.NewMTM(o, nil)
	procs := map[string]*search.Processor{
		"ssmd":         search.NewProcessor(acc),
		"pairwise":     search.NewProcessor(acc, search.WithStrategy(search.StrategyPairwise)),
		"point-engine": search.NewProcessor(acc, search.WithStrategy(search.StrategyPointEngine), search.WithPointEngine(ch.NewEngine(o, nil))),
		"table-engine": search.NewProcessor(acc, search.WithStrategy(search.StrategyTableEngine), search.WithTableEngine(mtm)),
	}
	for name, p := range procs {
		if _, err := p.Evaluate(nil, []roadnet.NodeID{1}); !errors.Is(err, search.ErrEmptyQuery) {
			t.Fatalf("%s Evaluate(∅, T): err = %v, want ErrEmptyQuery", name, err)
		}
		if _, err := p.EvaluateDistances([]roadnet.NodeID{1}, nil); !errors.Is(err, search.ErrEmptyQuery) {
			t.Fatalf("%s EvaluateDistances(S, ∅): err = %v, want ErrEmptyQuery", name, err)
		}
	}
	if _, _, err := mtm.Distances(nil, []roadnet.NodeID{1}); !errors.Is(err, search.ErrEmptyQuery) {
		t.Fatalf("MTM.Distances(∅, T): err = %v, want ErrEmptyQuery", err)
	}
	if _, err := mtm.Table([]roadnet.NodeID{1}, nil); !errors.Is(err, search.ErrEmptyQuery) {
		t.Fatalf("MTM.Table(S, ∅): err = %v, want ErrEmptyQuery", err)
	}
	if _, _, err := mtm.DistancesInto(nil, nil, nil); !errors.Is(err, search.ErrEmptyQuery) {
		t.Fatalf("MTM.DistancesInto(∅, ∅): err = %v, want ErrEmptyQuery", err)
	}
}

// TestStaleEngineGenerationContract exercises the search.Generational
// contract directly: a processor whose point/table engine generation trails
// a versioned accessor refuses with ErrStaleEngine instead of serving.
func TestStaleEngineGenerationContract(t *testing.T) {
	g := updateTestGraph(t, 30, 508)
	mg := storage.NewMutableGraph(g)
	o, err := ch.BuildCustomizable(g)
	if err != nil {
		t.Fatal(err)
	}
	eng := ch.NewEngine(o, nil)
	mtm := ch.NewMTM(o, nil)
	pePoint := search.NewProcessor(mg, search.WithStrategy(search.StrategyPointEngine), search.WithPointEngine(eng))
	peTable := search.NewProcessor(mg, search.WithStrategy(search.StrategyTableEngine), search.WithTableEngine(mtm))

	S, T := []roadnet.NodeID{1}, []roadnet.NodeID{2}
	if _, err := pePoint.Evaluate(S, T); err != nil {
		t.Fatalf("fresh point engine refused: %v", err)
	}
	if _, err := peTable.EvaluateDistances(S, T); err != nil {
		t.Fatalf("fresh table engine refused: %v", err)
	}

	if _, err := mg.UpdateWeights([]roadnet.ArcWeightChange{doubleOneArc(t, g)}); err != nil {
		t.Fatal(err)
	}
	if _, err := pePoint.Evaluate(S, T); !errors.Is(err, search.ErrStaleEngine) {
		t.Fatalf("stale point engine: err = %v, want ErrStaleEngine", err)
	}
	if _, err := peTable.EvaluateDistances(S, T); !errors.Is(err, search.ErrStaleEngine) {
		t.Fatalf("stale table engine: err = %v, want ErrStaleEngine", err)
	}

	// Re-customize and re-bind: serving resumes on the new generation.
	fresh, err := o.Recustomize(mg.Graph())
	if err != nil {
		t.Fatal(err)
	}
	eng2 := ch.NewEngine(fresh, nil)
	eng2.BindGeneration(storage.GenerationOf(mg))
	p2 := search.NewProcessor(mg, search.WithStrategy(search.StrategyPointEngine), search.WithPointEngine(eng2))
	res, err := p2.Evaluate(S, T)
	if err != nil {
		t.Fatalf("re-bound engine refused: %v", err)
	}
	want := referenceDistance(t, mg.Graph(), S[0], T[0])
	if got, _ := res.Distance(S[0], T[0]); got != want {
		t.Fatalf("re-bound engine distance %v, want %v", got, want)
	}
}
