package server

import (
	"sort"
	"sync"

	"opaque/internal/search"
)

// numShards stripes the server's query log and statistics so concurrent
// batch workers never contend on one global mutex. Must be a power of two;
// entries are routed by the low bits of the query ID, which an atomic counter
// hands out round-robin, spreading consecutive queries across all stripes.
const numShards = 16

// shardedLog is the striped query log: what the honest-but-curious operator
// accumulates, recorded without serialising the hot path behind one lock.
type shardedLog struct {
	shards [numShards]struct {
		mu      sync.Mutex
		entries []LogEntry
	}
}

// append records one entry in the stripe owned by its query ID.
func (l *shardedLog) append(e LogEntry) {
	s := &l.shards[e.QueryID&(numShards-1)]
	s.mu.Lock()
	s.entries = append(s.entries, e)
	s.mu.Unlock()
}

// snapshot merges every stripe and returns the entries ordered by query ID
// (the order they were admitted, since IDs are handed out monotonically).
func (l *shardedLog) snapshot() []LogEntry {
	var out []LogEntry
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		out = append(out, s.entries...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QueryID < out[j].QueryID })
	return out
}

// reset drops every recorded entry.
func (l *shardedLog) reset() {
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		s.entries = nil
		s.mu.Unlock()
	}
}

// shardedStats accumulates search statistics across stripes, merged on read.
type shardedStats struct {
	shards [numShards]struct {
		mu      sync.Mutex
		stats   search.Stats
		queries int
	}
}

// add merges one query's statistics into the stripe owned by its query ID.
func (s *shardedStats) add(queryID uint64, st search.Stats) {
	sh := &s.shards[queryID&(numShards-1)]
	sh.mu.Lock()
	sh.stats = sh.stats.Add(st)
	sh.queries++
	sh.mu.Unlock()
}

// total merges every stripe.
func (s *shardedStats) total() (search.Stats, int) {
	var st search.Stats
	queries := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st = st.Add(sh.stats)
		queries += sh.queries
		sh.mu.Unlock()
	}
	return st, queries
}

// reset zeroes every stripe.
func (s *shardedStats) reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.stats = search.Stats{}
		sh.queries = 0
		sh.mu.Unlock()
	}
}
