package server

// This file is the server's face on the multiplexed transport: the handler
// that answers framed queries, batches (streamed per-query) and weight
// updates, the Hello the server greets connecting peers with, and the
// admission-control degradation — a request arriving above the connection's
// ShedAt watermark is rewritten to DistanceOnly before evaluation, so an
// overloaded shard answers the cost table from the many-to-many engine
// instead of queueing full path unpacking.

import (
	"fmt"
	"net"
	"sort"

	"opaque/internal/protocol"
)

// HelloInfo returns the Hello this server greets multiplexed peers with: its
// current metric identity (generation + weight-content checksum), partition
// cell count and profile catalog. Re-read per connection so a fleet router
// admitting a shard sees the identity it currently serves under.
func (s *Server) HelloInfo() protocol.Hello {
	gen, sum := s.liveIdentity()
	h := protocol.Hello{
		Role:       "server",
		Generation: gen,
		ContentSum: sum,
	}
	if st := s.chSt.Load(); st != nil {
		h.Cells = st.overlay.PartitionCells()
	}
	if s.profiles != nil {
		names := make([]string, 0, len(s.profiles.defs))
		for name := range s.profiles.defs {
			names = append(names, name)
		}
		sort.Strings(names)
		h.Profiles = names
	}
	return h
}

// serverMuxHandler adapts the server to the multiplexed transport. It
// implements both protocol.MuxHandler (unary messages) and
// protocol.MuxBatchStreamer (batches answered one frame per query).
type serverMuxHandler struct {
	s *Server
}

// HandleMux implements protocol.MuxHandler.
func (h serverMuxHandler) HandleMux(msg any, info protocol.ReqInfo) (any, error) {
	switch m := msg.(type) {
	case protocol.ServerQuery:
		if info.Shed {
			m.DistanceOnly = true
		}
		return h.s.Evaluate(m)
	case protocol.BatchQuery:
		// Unary fallback; the transport normally takes HandleMuxBatch.
		return h.s.evaluateBatchMessage(shedBatch(m, info.Shed)), nil
	case protocol.WeightUpdate:
		return h.s.applyWeightUpdate(m)
	default:
		return nil, fmt.Errorf("server: unexpected message type %T", msg)
	}
}

// HandleMuxBatch implements protocol.MuxBatchStreamer: every query of the
// batch streams out as its own reply frame the moment it completes.
func (h serverMuxHandler) HandleMuxBatch(b protocol.BatchQuery, info protocol.ReqInfo, emit func(protocol.BatchItem)) error {
	b = shedBatch(b, info.Shed)
	h.s.EvaluateBatchStream(b.Queries, func(i int, r BatchResult) {
		item := protocol.BatchItem{BatchID: b.BatchID, Index: i, Reply: r.Reply}
		if r.Err != nil {
			item.Error = r.Err.Error()
		}
		emit(item)
	})
	return nil
}

// shedBatch rewrites a batch for degraded evaluation when the connection is
// above its shedding watermark. The queries slice is copied — the original
// message may alias transport buffers shared with other goroutines.
func shedBatch(b protocol.BatchQuery, shed bool) protocol.BatchQuery {
	if !shed {
		return b
	}
	queries := make([]protocol.ServerQuery, len(b.Queries))
	copy(queries, b.Queries)
	for i := range queries {
		queries[i].DistanceOnly = true
	}
	b.Queries = queries
	return b
}

// MuxHandler returns the server's handler for the multiplexed transport; its
// dynamic type also implements protocol.MuxBatchStreamer, so batches stream.
func (s *Server) MuxHandler() protocol.MuxHandler {
	return serverMuxHandler{s: s}
}

// ServeMux accepts multiplexed connections on ln until the listener closes.
// cfg's Hello defaults to the server's own HelloInfo.
func (s *Server) ServeMux(ln net.Listener, cfg protocol.MuxServerConfig) error {
	if cfg.Hello == nil {
		cfg.Hello = s.HelloInfo
	}
	return protocol.ServeMux(ln, s.MuxHandler(), cfg)
}

// ServeMuxConn serves one established multiplexed connection — the
// in-process harness (fleettest) drives shards over net.Pipe through this.
func (s *Server) ServeMuxConn(conn net.Conn, cfg protocol.MuxServerConfig) error {
	if cfg.Hello == nil {
		cfg.Hello = s.HelloInfo
	}
	return protocol.ServeMuxConn(conn, s.MuxHandler(), cfg)
}
