package server

import (
	"runtime"
	"sync"
	"time"

	"opaque/internal/protocol"
)

// This file is the server's batched evaluation engine. A batch is the set of
// obfuscated queries one obfuscator flush produces (all Q(S, T) of a batching
// window); evaluating them together lets the server (1) keep every core busy
// with a bounded worker pool, (2) share settled SSMD spanning trees across
// queries whose source sets overlap via the tree cache, and (3) amortise one
// network round trip over the whole batch in the networked deployment
// (protocol.BatchQuery). Per-query parallelism (Config.Workers) composes with
// batch parallelism (Config.BatchWorkers) under the server-wide
// Config.MaxConcurrentSearches gate, so total search concurrency stays
// bounded no matter how many batches arrive at once.
//
// Each in-flight per-source search checks an epoch-stamped workspace out of
// the server's shared search.WorkspacePool for its duration (the processor
// does this per evaluation row), so a batch of any size reuses at most
// (concurrent searches) workspaces and the steady-state engine allocates no
// distance or parent arrays at all.

// BatchResult pairs the reply for one query of a batch with its error.
// Queries fail individually: one malformed query does not poison the batch.
type BatchResult struct {
	Reply protocol.ServerReply
	Err   error
}

// EvaluateBatch evaluates every query of the batch on the engine's worker
// pool and returns one result per query, in input order. It is safe to call
// from any number of goroutines; all calls share the same worker bound
// implicitly through the search gate and the accessor.
func (s *Server) EvaluateBatch(queries []protocol.ServerQuery) []BatchResult {
	results := make([]BatchResult, len(queries))
	s.EvaluateBatchStream(queries, func(i int, r BatchResult) {
		results[i] = r
	})
	return results
}

// EvaluateBatchStream evaluates every query of the batch on the engine's
// worker pool, delivering each result through emit as the query completes —
// the streaming face the multiplexed transport's per-query reply frames are
// built on, so the first finished query of a batch reaches the obfuscator
// while later ones are still searching. emit receives the query's index in
// the batch and may be called concurrently from several workers (with
// distinct indices); it must be safe for that. EvaluateBatchStream returns
// when every query has been emitted.
func (s *Server) EvaluateBatchStream(queries []protocol.ServerQuery, emit func(int, BatchResult)) {
	if len(queries) == 0 {
		return
	}
	start := time.Now()

	workers := s.cfg.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	if workers <= 1 {
		for i, q := range queries {
			reply, err := s.Evaluate(q)
			emit(i, BatchResult{Reply: reply, Err: err})
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					reply, err := s.Evaluate(queries[i])
					emit(i, BatchResult{Reply: reply, Err: err})
				}
			}()
		}
		for i := range queries {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	s.mBatches.Add(1)
	s.mBatchQueries.Add(int64(len(queries)))
	s.hBatchLatency.Observe(time.Since(start))
	s.metrics.SetGauge("last_batch_size", float64(len(queries)))
	s.publishDerivedMetrics()
}

// evaluateBatchMessage answers a wire BatchQuery with a BatchReply, mapping
// per-query errors to their slot instead of failing the message.
func (s *Server) evaluateBatchMessage(b protocol.BatchQuery) protocol.BatchReply {
	results := s.EvaluateBatch(b.Queries)
	reply := protocol.BatchReply{
		BatchID: b.BatchID,
		Replies: make([]protocol.ServerReply, len(results)),
		Errors:  make([]string, len(results)),
	}
	for i, r := range results {
		reply.Replies[i] = r.Reply
		if r.Err != nil {
			reply.Errors[i] = r.Err.Error()
		}
	}
	return reply
}
