package server

import (
	"runtime"
	"sync"
	"time"

	"opaque/internal/protocol"
)

// This file is the server's batched evaluation engine. A batch is the set of
// obfuscated queries one obfuscator flush produces (all Q(S, T) of a batching
// window); evaluating them together lets the server (1) keep every core busy
// with a bounded worker pool, (2) share settled SSMD spanning trees across
// queries whose source sets overlap via the tree cache, and (3) amortise one
// network round trip over the whole batch in the networked deployment
// (protocol.BatchQuery). Per-query parallelism (Config.Workers) composes with
// batch parallelism (Config.BatchWorkers) under the server-wide
// Config.MaxConcurrentSearches gate, so total search concurrency stays
// bounded no matter how many batches arrive at once.
//
// Each in-flight per-source search checks an epoch-stamped workspace out of
// the server's shared search.WorkspacePool for its duration (the processor
// does this per evaluation row), so a batch of any size reuses at most
// (concurrent searches) workspaces and the steady-state engine allocates no
// distance or parent arrays at all.

// BatchResult pairs the reply for one query of a batch with its error.
// Queries fail individually: one malformed query does not poison the batch.
type BatchResult struct {
	Reply protocol.ServerReply
	Err   error
}

// EvaluateBatch evaluates every query of the batch on the engine's worker
// pool and returns one result per query, in input order. It is safe to call
// from any number of goroutines; all calls share the same worker bound
// implicitly through the search gate and the accessor.
func (s *Server) EvaluateBatch(queries []protocol.ServerQuery) []BatchResult {
	results := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return results
	}
	start := time.Now()

	workers := s.cfg.BatchWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}

	if workers <= 1 {
		for i, q := range queries {
			results[i].Reply, results[i].Err = s.Evaluate(q)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i].Reply, results[i].Err = s.Evaluate(queries[i])
				}
			}()
		}
		for i := range queries {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	s.mBatches.Add(1)
	s.mBatchQueries.Add(int64(len(queries)))
	s.hBatchLatency.Observe(time.Since(start))
	s.metrics.SetGauge("last_batch_size", float64(len(queries)))
	s.publishDerivedMetrics()
	return results
}

// evaluateBatchMessage answers a wire BatchQuery with a BatchReply, mapping
// per-query errors to their slot instead of failing the message.
func (s *Server) evaluateBatchMessage(b protocol.BatchQuery) protocol.BatchReply {
	results := s.EvaluateBatch(b.Queries)
	reply := protocol.BatchReply{
		BatchID: b.BatchID,
		Replies: make([]protocol.ServerReply, len(results)),
		Errors:  make([]string, len(results)),
	}
	for i, r := range results {
		reply.Replies[i] = r.Reply
		if r.Err != nil {
			reply.Errors[i] = r.Err.Error()
		}
	}
	return reply
}
