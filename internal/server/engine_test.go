package server

import (
	"reflect"
	"sync"
	"testing"

	"opaque/internal/protocol"
	"opaque/internal/roadnet"
)

// batchConfig returns the full batch-engine configuration: worker-pool batch
// evaluation, SSMD tree cache, and the server-wide search gate.
func batchConfig() Config {
	cfg := DefaultConfig()
	cfg.BatchWorkers = 4
	cfg.Workers = 2
	cfg.TreeCache = 64
	cfg.MaxConcurrentSearches = 8
	return cfg
}

// overlappingBatch builds queries whose source sets overlap across queries,
// the shared-mode pattern the tree cache exists for.
func overlappingBatch(g *roadnet.Graph, n int) []protocol.ServerQuery {
	nodes := g.NumNodes()
	pick := func(i int) roadnet.NodeID { return roadnet.NodeID(i % nodes) }
	out := make([]protocol.ServerQuery, n)
	for i := range out {
		out[i] = protocol.ServerQuery{
			QueryID: uint64(i + 1),
			Sources: []roadnet.NodeID{pick(3 * (i % 4)), pick(500 + i%3)},
			Dests:   []roadnet.NodeID{pick(200 + 11*(i%5)), pick(700 + i%2)},
		}
	}
	return out
}

// TestEvaluateBatchMatchesSequential checks the engine's correctness
// contract: batched evaluation through the worker pool and tree cache returns
// exactly the candidate paths sequential, uncached evaluation returns.
func TestEvaluateBatchMatchesSequential(t *testing.T) {
	g := testGraph(t)
	plain := MustNew(g, DefaultConfig())
	batched := MustNew(g, batchConfig())
	queries := overlappingBatch(g, 24)

	results := batched.EvaluateBatch(queries)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, q := range queries {
		want, err := plain.Evaluate(q)
		if err != nil {
			t.Fatalf("query %d: sequential Evaluate: %v", i, err)
		}
		got := results[i]
		if got.Err != nil {
			t.Fatalf("query %d: batch error: %v", i, got.Err)
		}
		if got.Reply.QueryID != q.QueryID {
			t.Errorf("query %d: reply for query %d", i, got.Reply.QueryID)
		}
		// Settled-node counts legitimately differ (cache hits count only
		// incremental work); the returned paths must not.
		if !reflect.DeepEqual(got.Reply.Paths, want.Paths) {
			t.Errorf("query %d: batched candidate paths differ from sequential evaluation", i)
		}
	}
}

// TestEvaluateBatchEmpty checks the zero-length batch degenerates cleanly.
func TestEvaluateBatchEmpty(t *testing.T) {
	srv := MustNew(testGraph(t), batchConfig())
	if results := srv.EvaluateBatch(nil); len(results) != 0 {
		t.Fatalf("EvaluateBatch(nil) returned %d results", len(results))
	}
}

// TestEvaluateBatchPerQueryErrors checks one malformed query fails alone
// without poisoning its batch.
func TestEvaluateBatchPerQueryErrors(t *testing.T) {
	g := testGraph(t)
	srv := MustNew(g, batchConfig())
	queries := overlappingBatch(g, 4)
	queries[2].Sources = nil // malformed: empty source set

	results := srv.EvaluateBatch(queries)
	for i, r := range results {
		if i == 2 {
			if r.Err == nil {
				t.Error("malformed query 2 did not fail")
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("query %d failed alongside the malformed one: %v", i, r.Err)
		}
		if len(r.Reply.Paths) == 0 {
			t.Errorf("query %d returned no candidate paths", i)
		}
	}
}

// TestEvaluateBatchConcurrentHammer hammers EvaluateBatch from many
// goroutines sharing one server (run under -race). Every caller must receive
// exactly the reference paths regardless of interleaving with the shared tree
// cache, gate and sharded accumulators.
func TestEvaluateBatchConcurrentHammer(t *testing.T) {
	g := testGraph(t)
	queries := overlappingBatch(g, 16)

	// Reference answers from a plain sequential server.
	plain := MustNew(g, DefaultConfig())
	want := make([]protocol.ServerReply, len(queries))
	for i, q := range queries {
		reply, err := plain.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = reply
	}

	srv := MustNew(g, batchConfig())
	const hammers = 8
	const roundsPerHammer = 5
	var wg sync.WaitGroup
	errs := make(chan error, hammers)
	for h := 0; h < hammers; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for round := 0; round < roundsPerHammer; round++ {
				// Each hammer evaluates a rotated view of the shared queries
				// so concurrent batches overlap on sources but differ in
				// order.
				batch := make([]protocol.ServerQuery, len(queries))
				for i := range queries {
					batch[i] = queries[(i+h)%len(queries)]
				}
				for i, r := range srv.EvaluateBatch(batch) {
					if r.Err != nil {
						t.Errorf("hammer %d: query %d: %v", h, i, r.Err)
						return
					}
					if !reflect.DeepEqual(r.Reply.Paths, want[(i+h)%len(queries)].Paths) {
						t.Errorf("hammer %d round %d: query %d paths diverged under concurrency", h, round, i)
						return
					}
				}
			}
		}(h)
	}
	wg.Wait()
	close(errs)

	// The server-level accounting must add up exactly despite the sharding.
	if got, want := srv.mQueries.Value(), int64(hammers*roundsPerHammer*len(queries)); got != want {
		t.Errorf("queries_processed = %d, want %d", got, want)
	}
	if got, want := srv.mBatches.Value(), int64(hammers*roundsPerHammer); got != want {
		t.Errorf("batches_processed = %d, want %d", got, want)
	}
	if _, n := srv.TotalStats(); n != hammers*roundsPerHammer*len(queries) {
		t.Errorf("TotalStats query count = %d, want %d", n, hammers*roundsPerHammer*len(queries))
	}
	if got := len(srv.QueryLog()); got != hammers*roundsPerHammer*len(queries) {
		t.Errorf("query log holds %d entries, want %d", got, hammers*roundsPerHammer*len(queries))
	}
}

// TestBatchMetricsExposeCacheHitRatio checks the acceptance criterion that
// the SSMD tree cache hit ratio is observable through the server's metrics
// registry after batched evaluation.
func TestBatchMetricsExposeCacheHitRatio(t *testing.T) {
	g := testGraph(t)
	srv := MustNew(g, batchConfig())
	queries := overlappingBatch(g, 12)

	// Two identical batches: the second is answered from the cache.
	srv.EvaluateBatch(queries)
	srv.EvaluateBatch(queries)

	reg := srv.Metrics()
	if ratio := reg.Gauge("tree_cache_hit_ratio"); ratio <= 0 {
		t.Errorf("tree_cache_hit_ratio gauge = %v, want > 0 after repeated batches", ratio)
	}
	if reg.Counter("batches_processed") != 2 {
		t.Errorf("batches_processed = %d, want 2", reg.Counter("batches_processed"))
	}
	if reg.Counter("batch_queries") != int64(2*len(queries)) {
		t.Errorf("batch_queries = %d, want %d", reg.Counter("batch_queries"), 2*len(queries))
	}
	st := srv.TreeCacheStats()
	if st.Hits == 0 {
		t.Error("TreeCacheStats reports no hits after repeating a batch")
	}
	if h := reg.Histogram("batch_latency"); h == nil || h.Count() != 2 {
		t.Error("batch_latency histogram missing or not observed twice")
	}
}

// TestBatchQueryMessageRoundTrip drives the wire-level batch path: a
// BatchQuery through the server's protocol handler yields one reply per
// query with per-slot errors.
func TestBatchQueryMessageRoundTrip(t *testing.T) {
	g := testGraph(t)
	srv := MustNew(g, batchConfig())
	queries := overlappingBatch(g, 3)
	queries[1].Dests = nil // malformed slot

	raw, err := srv.Handler()(protocol.BatchQuery{BatchID: 77, Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	reply, ok := raw.(protocol.BatchReply)
	if !ok {
		t.Fatalf("handler returned %T, want protocol.BatchReply", raw)
	}
	if reply.BatchID != 77 {
		t.Errorf("BatchID = %d, want 77", reply.BatchID)
	}
	if len(reply.Replies) != 3 || len(reply.Errors) != 3 {
		t.Fatalf("got %d replies / %d errors, want 3 / 3", len(reply.Replies), len(reply.Errors))
	}
	if reply.Errors[1] == "" {
		t.Error("malformed query 1 produced no error message")
	}
	for _, i := range []int{0, 2} {
		if reply.Errors[i] != "" {
			t.Errorf("query %d failed: %s", i, reply.Errors[i])
		}
		if len(reply.Replies[i].Paths) == 0 {
			t.Errorf("query %d returned no candidate paths", i)
		}
	}
}
