package server

import (
	"bytes"
	"strings"
	"testing"

	"opaque/internal/protocol"
	"opaque/internal/roadnet"
)

func TestDumpAndReadLog(t *testing.T) {
	g := testGraph(t)
	srv := MustNew(g, DefaultConfig())
	queries := []protocol.ServerQuery{
		{QueryID: 1, Sources: []roadnet.NodeID{1, 2}, Dests: []roadnet.NodeID{10, 11, 12}},
		{QueryID: 2, Sources: []roadnet.NodeID{5}, Dests: []roadnet.NodeID{20}},
	}
	for _, q := range queries {
		if _, err := srv.Evaluate(q); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := srv.DumpLog(&buf); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(queries) {
		t.Fatalf("read %d entries, want %d", len(entries), len(queries))
	}
	for i, q := range queries {
		if entries[i].QueryID != q.QueryID {
			t.Errorf("entry %d id = %d, want %d", i, entries[i].QueryID, q.QueryID)
		}
		if len(entries[i].Sources) != len(q.Sources) || len(entries[i].Dests) != len(q.Dests) {
			t.Errorf("entry %d sets = %d/%d, want %d/%d", i, len(entries[i].Sources), len(entries[i].Dests), len(q.Sources), len(q.Dests))
		}
	}
}

func TestReadLogErrors(t *testing.T) {
	if entries, err := ReadLog(strings.NewReader("")); err != nil || len(entries) != 0 {
		t.Errorf("empty log: entries=%d err=%v", len(entries), err)
	}
	if _, err := ReadLog(strings.NewReader("{not json")); err == nil {
		t.Error("malformed log accepted")
	}
}
