package server

import (
	"math"
	"net"
	"sync"
	"testing"

	"opaque/internal/gen"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

func testGraph(t testing.TB) *roadnet.Graph {
	t.Helper()
	cfg := gen.DefaultNetworkConfig()
	cfg.Nodes = 800
	cfg.Seed = 71
	return gen.MustGenerate(cfg)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil graph accepted")
	}
	mutable := roadnet.NewGraph(1, 0)
	mutable.AddNode(0, 0)
	if _, err := New(mutable, DefaultConfig()); err == nil {
		t.Error("unfrozen graph accepted")
	}
	g := testGraph(t)
	badPage := DefaultConfig()
	badPage.Paged = true
	badPage.PageConfig.NodesPerPage = 0
	if _, err := New(g, badPage); err == nil {
		t.Error("invalid page config accepted")
	}
}

func TestEvaluateMatchesDirectSearch(t *testing.T) {
	g := testGraph(t)
	srv := MustNew(g, DefaultConfig())
	acc := storage.NewMemoryGraph(g)

	sources := []roadnet.NodeID{1, 50}
	dests := []roadnet.NodeID{200, 400, 600}
	reply, err := srv.Evaluate(protocol.ServerQuery{QueryID: 1, Sources: sources, Dests: dests})
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Paths) != len(sources)*len(dests) {
		t.Fatalf("got %d candidate paths, want %d", len(reply.Paths), len(sources)*len(dests))
	}
	for _, c := range reply.Paths {
		want, _, err := search.Dijkstra(acc, c.Source, c.Dest)
		if err != nil {
			t.Fatal(err)
		}
		if want.Empty() != !c.Found {
			t.Errorf("reachability mismatch for (%d,%d)", c.Source, c.Dest)
		}
		if c.Found && math.Abs(want.Cost-c.Cost) > 1e-6 {
			t.Errorf("cost %v != direct %v for (%d,%d)", c.Cost, want.Cost, c.Source, c.Dest)
		}
	}
	if reply.SettledNodes <= 0 {
		t.Error("settled node count missing from reply")
	}
}

func TestEvaluateRejectsEmptySets(t *testing.T) {
	srv := MustNew(testGraph(t), DefaultConfig())
	if _, err := srv.Evaluate(protocol.ServerQuery{Sources: nil, Dests: []roadnet.NodeID{1}}); err == nil {
		t.Error("empty source set accepted")
	}
	if _, err := srv.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{1}, Dests: nil}); err == nil {
		t.Error("empty destination set accepted")
	}
	if _, err := srv.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{-2}, Dests: []roadnet.NodeID{1}}); err == nil {
		t.Error("invalid source accepted")
	}
}

func TestQueryLogAndStats(t *testing.T) {
	g := testGraph(t)
	srv := MustNew(g, DefaultConfig())
	if _, err := srv.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{1, 2}, Dests: []roadnet.NodeID{3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Evaluate(protocol.ServerQuery{QueryID: 77, Sources: []roadnet.NodeID{5}, Dests: []roadnet.NodeID{6}}); err != nil {
		t.Fatal(err)
	}
	log := srv.QueryLog()
	if len(log) != 2 {
		t.Fatalf("query log has %d entries, want 2", len(log))
	}
	if log[1].QueryID != 77 {
		t.Errorf("explicit query id not preserved: %d", log[1].QueryID)
	}
	if len(log[0].Sources) != 2 || len(log[0].Dests) != 1 {
		t.Errorf("log entry sets = %d/%d, want 2/1", len(log[0].Sources), len(log[0].Dests))
	}
	stats, n := srv.TotalStats()
	if n != 2 || stats.SettledNodes == 0 {
		t.Errorf("total stats = %+v over %d queries", stats, n)
	}
	srv.ResetStats()
	if _, n := srv.TotalStats(); n != 0 {
		t.Error("ResetStats did not clear the counters")
	}
	if len(srv.QueryLog()) != 0 {
		t.Error("ResetStats did not clear the query log")
	}
}

func TestNoLogWhenDisabled(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.KeepLog = false
	srv := MustNew(g, cfg)
	if _, err := srv.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{2}}); err != nil {
		t.Fatal(err)
	}
	if len(srv.QueryLog()) != 0 {
		t.Error("query logged despite KeepLog=false")
	}
}

func TestPagedServerCountsFaults(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Paged = true
	cfg.BufferPages = 16
	srv := MustNew(g, cfg)
	reply, err := srv.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{0}, Dests: []roadnet.NodeID{roadnet.NodeID(g.NumNodes() - 1)}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.PageFaults <= 0 {
		t.Error("paged server reported no page faults for a cross-network query")
	}
	if srv.IOStats().Faults <= 0 {
		t.Error("IOStats missing faults")
	}
	// In-memory server reports zero I/O.
	mem := MustNew(g, DefaultConfig())
	if mem.IOStats() != (storage.IOStats{}) {
		t.Error("in-memory server should report zero IOStats")
	}
}

func TestStrategiesProduceSameCosts(t *testing.T) {
	g := testGraph(t)
	q := protocol.ServerQuery{Sources: []roadnet.NodeID{3, 9}, Dests: []roadnet.NodeID{100, 300}}
	cfgA := DefaultConfig()
	cfgA.Strategy = search.StrategySSMD
	cfgB := DefaultConfig()
	cfgB.Strategy = search.StrategyPairwise
	a, err := MustNew(g, cfgA).Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MustNew(g, cfgB).Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	costs := func(r protocol.ServerReply) map[[2]roadnet.NodeID]float64 {
		m := map[[2]roadnet.NodeID]float64{}
		for _, c := range r.Paths {
			m[[2]roadnet.NodeID{c.Source, c.Dest}] = c.Cost
		}
		return m
	}
	ca, cb := costs(a), costs(b)
	for k, v := range ca {
		if math.Abs(cb[k]-v) > 1e-6 {
			t.Errorf("pair %v: ssmd cost %v, pairwise cost %v", k, v, cb[k])
		}
	}
}

func TestConcurrentEvaluate(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Paged = true
	srv := MustNew(g, cfg)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := roadnet.NodeID(i * 13 % g.NumNodes())
			d := roadnet.NodeID((i*29 + 100) % g.NumNodes())
			if _, err := srv.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{s}, Dests: []roadnet.NodeID{d}}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, n := srv.TotalStats(); n != 16 {
		t.Errorf("processed %d queries, want 16", n)
	}
}

func TestServeOverTCP(t *testing.T) {
	g := testGraph(t)
	srv := MustNew(g, DefaultConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer ln.Close()

	conn, err := protocol.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	reply, err := conn.Call(protocol.ServerQuery{QueryID: 3, Sources: []roadnet.NodeID{0}, Dests: []roadnet.NodeID{10}})
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := reply.(protocol.ServerReply)
	if !ok || sr.QueryID != 3 || len(sr.Paths) != 1 {
		t.Errorf("TCP reply = %+v", reply)
	}
	// A malformed message type gets an error reply, not a dropped connection.
	badReply, err := conn.Call(protocol.ClientRequest{RequestID: 1, User: "x", Source: 0, Dest: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := badReply.(protocol.ErrorReply); !ok {
		t.Errorf("expected ErrorReply for wrong message type, got %T", badReply)
	}
}
