package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// DumpLog writes the server's accumulated query log as JSON lines, one
// LogEntry per line. Operators use it to persist what the server observed so
// the audit tooling (cmd/opaque-audit, internal/privacy.AnalyzeLog) can run
// offline; experiments use it to hand logs between processes.
func (s *Server) DumpLog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, entry := range s.QueryLog() {
		if err := enc.Encode(entry); err != nil {
			return fmt.Errorf("server: encoding log entry %d: %w", entry.QueryID, err)
		}
	}
	return bw.Flush()
}

// ReadLog parses a JSON-lines query log written by DumpLog.
func ReadLog(r io.Reader) ([]LogEntry, error) {
	var out []LogEntry
	dec := json.NewDecoder(r)
	for {
		var entry LogEntry
		if err := dec.Decode(&entry); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("server: parsing query log entry %d: %w", len(out), err)
		}
		out = append(out, entry)
	}
	return out, nil
}
