package server

import (
	"testing"

	"opaque/internal/protocol"
	"opaque/internal/roadnet"
)

func TestServerRecordsMetrics(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Paged = true
	srv := MustNew(g, cfg)
	for i := 0; i < 3; i++ {
		q := protocol.ServerQuery{
			Sources: []roadnet.NodeID{roadnet.NodeID(i), roadnet.NodeID(i + 10)},
			Dests:   []roadnet.NodeID{roadnet.NodeID(100 + i)},
		}
		if _, err := srv.Evaluate(q); err != nil {
			t.Fatal(err)
		}
	}
	m := srv.Metrics()
	if got := m.Counter("queries_processed"); got != 3 {
		t.Errorf("queries_processed = %d, want 3", got)
	}
	if got := m.Counter("candidate_pairs"); got != 6 {
		t.Errorf("candidate_pairs = %d, want 6", got)
	}
	if m.Counter("nodes_settled") <= 0 {
		t.Error("nodes_settled not recorded")
	}
	if h := m.Histogram("query_latency"); h == nil || h.Count() != 3 {
		t.Error("query_latency histogram not recorded")
	}
	if m.Gauge("buffer_hit_ratio") < 0 || m.Gauge("buffer_hit_ratio") > 1 {
		t.Errorf("buffer_hit_ratio = %v out of range", m.Gauge("buffer_hit_ratio"))
	}
	// Failed queries are counted separately.
	if _, err := srv.Evaluate(protocol.ServerQuery{}); err == nil {
		t.Fatal("empty query accepted")
	}
	// Note: validation failures happen before the processor runs and are not
	// counted as processed.
	if got := m.Counter("queries_processed"); got != 3 {
		t.Errorf("queries_processed after invalid query = %d, want 3", got)
	}
}
