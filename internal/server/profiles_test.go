package server

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"opaque/internal/costmodel"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
)

// profileServer builds a hybrid server with a partitioned customizable
// overlay and the built-in time-of-day profiles prewarmed.
func profileServer(t *testing.T, n int, seed int64) (*Server, *roadnet.Graph) {
	t.Helper()
	g := updateTestGraph(t, n, seed)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyHybrid
	cfg.BuildCH = true
	cfg.PartitionCells = 4
	cfg.Profiles = costmodel.TimeOfDayProfiles()
	cfg.PrewarmProfiles = true
	return MustNew(g, cfg), g
}

// checkReplyMatchesMetric asserts every candidate distance of the reply
// equals the reference distance on the given metric graph.
func checkReplyMatchesMetric(t *testing.T, metric *roadnet.Graph, reply protocol.ServerReply) {
	t.Helper()
	for _, cand := range reply.Paths {
		want := referenceDistance(t, metric, cand.Source, cand.Dest)
		got := cand.Cost
		if len(cand.Nodes) == 0 && cand.Source != cand.Dest {
			got = math.Inf(1)
		}
		if got != want && math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("pair (%d,%d): served %v, metric graph says %v", cand.Source, cand.Dest, got, want)
		}
	}
}

// TestProfileQueriesServeProfileMetric: a query naming a profile must be
// answered with distances of that profile's reweighted graph — not the live
// metric — for both the pairwise and many-to-many overlay routes.
func TestProfileQueriesServeProfileMetric(t *testing.T) {
	s, g := profileServer(t, 80, 601)
	rng := rand.New(rand.NewSource(602))
	for _, name := range []string{costmodel.ProfileAMPeak, costmodel.ProfileNight} {
		metric, err := s.ProfileGraph(name)
		if err != nil {
			t.Fatal(err)
		}
		if metric.ContentChecksum() == g.ContentChecksum() {
			t.Fatalf("%s: profile metric identical to base metric", name)
		}
		// Point-shaped (pairwise CH route) and wide (MTM route) queries.
		for _, shape := range []int{1, 4} {
			srcs := make([]roadnet.NodeID, shape)
			dsts := make([]roadnet.NodeID, shape)
			for i := range srcs {
				srcs[i] = roadnet.NodeID(rng.Intn(g.NumNodes()))
				dsts[i] = roadnet.NodeID(rng.Intn(g.NumNodes()))
			}
			reply, err := s.Evaluate(protocol.ServerQuery{Sources: srcs, Dests: dsts, Profile: name})
			if err != nil {
				t.Fatal(err)
			}
			checkReplyMatchesMetric(t, metric, reply)
		}
	}
	// Queries without a profile keep serving the live metric.
	reply, err := s.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{5}})
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesMetric(t, g, reply)
}

func TestProfileUnknownNameFails(t *testing.T) {
	s, _ := profileServer(t, 60, 603)
	_, err := s.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{2}, Profile: "rush-hour-on-mars"})
	if err == nil || !strings.Contains(err.Error(), "unknown weight profile") {
		t.Fatalf("unknown profile error = %v", err)
	}
	if got := s.Metrics().Counter("queries_failed"); got != 1 {
		t.Errorf("queries_failed = %d, want 1", got)
	}
}

func TestProfileWithoutConfigurationFails(t *testing.T) {
	g := updateTestGraph(t, 40, 604)
	cfg := DefaultConfig()
	s := MustNew(g, cfg)
	_, err := s.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{1}, Dests: []roadnet.NodeID{2}, Profile: costmodel.ProfileNight})
	if err == nil || !strings.Contains(err.Error(), "no profiles configured") {
		t.Fatalf("unconfigured profile error = %v", err)
	}
}

// TestProfileLayerHitMissCounters: prewarmed layers miss exactly once each
// (at startup) and every query afterwards is a hit — zero customization on
// the query path.
func TestProfileLayerHitMissCounters(t *testing.T) {
	s, g := profileServer(t, 60, 605)
	m := s.Metrics()
	misses0 := m.Counter("profile_layer_misses")
	if misses0 != int64(len(costmodel.TimeOfDayProfiles())) {
		t.Fatalf("prewarm misses = %d, want %d", misses0, len(costmodel.TimeOfDayProfiles()))
	}
	recust0 := m.Counter("recustomize_runs")
	const queries = 10
	for i := 0; i < queries; i++ {
		src := roadnet.NodeID(i % g.NumNodes())
		dst := roadnet.NodeID((i * 7) % g.NumNodes())
		if _, err := s.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{src}, Dests: []roadnet.NodeID{dst}, Profile: costmodel.ProfileOffPeak}); err != nil {
			t.Fatal(err)
		}
	}
	if hits := m.Counter("profile_layer_hits"); hits != queries {
		t.Errorf("profile_layer_hits = %d, want %d", hits, queries)
	}
	if misses := m.Counter("profile_layer_misses"); misses != misses0 {
		t.Errorf("profile_layer_misses grew %d → %d during queries; layers must be served precustomized", misses0, misses)
	}
	if recust := m.Counter("recustomize_runs"); recust != recust0 {
		t.Errorf("recustomize_runs grew %d → %d from profile queries; the query path must cost zero customization", recust0, recust)
	}
	if st := s.ProfileLayerStats(); st.Layers != len(costmodel.TimeOfDayProfiles()) {
		t.Errorf("resident layers = %d, want %d", st.Layers, len(costmodel.TimeOfDayProfiles()))
	}
}

// TestProfileServingSurvivesLiveUpdates: profile layers bind to the startup
// metric, so live weight updates neither invalidate them nor stall their
// queries — even while the base overlay is stale awaiting re-customization.
func TestProfileServingSurvivesLiveUpdates(t *testing.T) {
	s, g := profileServer(t, 80, 606)
	metric, err := s.ProfileGraph(costmodel.ProfilePMPeak)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyWeights([]roadnet.ArcWeightChange{doubleOneArc(t, g)}); err != nil {
		t.Fatal(err)
	}
	// ApplyWeights deliberately skips the refresh kick: the base overlay is
	// now stale. Profile queries must still serve full-speed, correct,
	// profile-metric answers.
	if s.OverlayFresh() {
		t.Fatal("test setup: overlay should be stale after ApplyWeights")
	}
	reply, err := s.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{2}, Dests: []roadnet.NodeID{9}, Profile: costmodel.ProfilePMPeak})
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesMetric(t, metric, reply)
	if stale := s.Metrics().Counter("overlay_stale_queries"); stale != 0 {
		t.Errorf("overlay_stale_queries = %d; profile queries must not be counted stale", stale)
	}
	if err := s.RecustomizeNow(); err != nil {
		t.Fatal(err)
	}
	if !s.OverlayFresh() {
		t.Error("overlay still stale after RecustomizeNow")
	}
}

// TestProfileLRUEvictionRebuilds: capacity below the catalog size forces
// evictions; an evicted profile rebuilds on demand and serves correctly.
func TestProfileLRUEvictionRebuilds(t *testing.T) {
	g := updateTestGraph(t, 60, 607)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyHybrid
	cfg.BuildCH = true
	cfg.Profiles = costmodel.TimeOfDayProfiles()
	cfg.ProfileCapacity = 2
	cfg.PrewarmProfiles = true
	s := MustNew(g, cfg)
	st := s.ProfileLayerStats()
	if st.Layers != 2 {
		t.Fatalf("resident layers = %d, want capacity 2", st.Layers)
	}
	if st.Evictions == 0 {
		t.Fatal("prewarming 4 profiles into capacity 2 must evict")
	}
	// Every profile still answers — evicted ones rebuild (one more miss).
	for _, p := range costmodel.TimeOfDayProfiles() {
		metric, err := s.ProfileGraph(p.Name)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := s.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{3}, Dests: []roadnet.NodeID{11}, Profile: p.Name})
		if err != nil {
			t.Fatal(err)
		}
		checkReplyMatchesMetric(t, metric, reply)
	}
}

func TestProfileConfigValidation(t *testing.T) {
	g := updateTestGraph(t, 40, 608)

	paged := DefaultConfig()
	paged.Paged = true
	paged.Profiles = costmodel.TimeOfDayProfiles()
	if _, err := New(g, paged); err == nil {
		t.Error("profiles on a paged server must be refused")
	}

	dup := DefaultConfig()
	dup.Profiles = []costmodel.WeightProfile{costmodel.TimeOfDayProfiles()[0], costmodel.TimeOfDayProfiles()[0]}
	if _, err := New(g, dup); err == nil {
		t.Error("duplicate profile names must be refused")
	}
}

// TestProfileOnFlatServer: an SSMD server without any overlay still serves
// profiles, through flat per-profile processors.
func TestProfileOnFlatServer(t *testing.T) {
	g := updateTestGraph(t, 50, 609)
	cfg := DefaultConfig()
	cfg.Profiles = costmodel.TimeOfDayProfiles()
	cfg.PrewarmProfiles = true
	s := MustNew(g, cfg)
	metric, err := s.ProfileGraph(costmodel.ProfileNight)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := s.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{1, 2}, Dests: []roadnet.NodeID{7, 8}, Profile: costmodel.ProfileNight})
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesMetric(t, metric, reply)
}
