package server

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
	"opaque/internal/traffic"
)

// arcPool collects up to max distinct (from,to) arc pairs of the graph,
// remembering their original costs for revert events.
func arcPool(g *roadnet.Graph, max int) ([][2]roadnet.NodeID, map[[2]roadnet.NodeID]float64) {
	pool := make([][2]roadnet.NodeID, 0, max)
	orig := make(map[[2]roadnet.NodeID]float64, max)
	for v := 0; v < g.NumNodes() && len(pool) < max; v++ {
		for _, a := range g.Arcs(roadnet.NodeID(v)) {
			key := [2]roadnet.NodeID{roadnet.NodeID(v), a.To}
			if _, seen := orig[key]; seen {
				continue
			}
			orig[key] = a.Cost
			pool = append(pool, key)
			if len(pool) == max {
				break
			}
		}
	}
	return pool, orig
}

// TestIngestCoalescedEquivalentToSequential is the end-to-end property test:
// a server fed through the streaming pipeline — coalesced batches, pipelined
// re-customization, concurrent batch queries hammering it the whole time —
// must end at exactly the graph a plain per-event sequential fold produces,
// and must have gotten there with fewer applied changes than raw events.
func TestIngestCoalescedEquivalentToSequential(t *testing.T) {
	g := updateTestGraph(t, 80, 701)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyHybrid
	cfg.BuildCH = true
	cfg.PartitionCells = 4
	s := MustNew(g, cfg)

	pool, orig := arcPool(g, 24)
	rng := rand.New(rand.NewSource(702))
	const nEvents = 1200
	events := make([]roadnet.ArcWeightChange, 0, nEvents)
	for i := 0; i < nEvents; i++ {
		key := pool[rng.Intn(len(pool))]
		cost := 1 + rng.Float64()*30
		if rng.Intn(4) == 0 {
			cost = orig[key] // revert to the startup weight
		}
		events = append(events, roadnet.ArcWeightChange{From: key[0], To: key[1], NewCost: cost})
	}

	// Reference: fold the same events one at a time, no coalescing.
	seq := g
	for _, e := range events {
		var err error
		seq, err = seq.WithUpdatedWeights([]roadnet.ArcWeightChange{e})
		if err != nil {
			t.Fatal(err)
		}
	}

	in, err := s.NewIngestor(traffic.Config{MaxBatch: 32, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent batch-query load for the whole stream. Replies are not
	// verified here — the snapshot they ran against is gone by the time the
	// worker sees them — this load exists so the race detector can watch
	// queries overlap snapshot swaps and overlay refreshes.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				qs := make([]protocol.ServerQuery, 3)
				for i := range qs {
					qs[i] = protocol.ServerQuery{
						Sources: []roadnet.NodeID{roadnet.NodeID(qrng.Intn(g.NumNodes()))},
						Dests:   []roadnet.NodeID{roadnet.NodeID(qrng.Intn(g.NumNodes()))},
					}
				}
				for _, r := range s.EvaluateBatch(qs) {
					if r.Err != nil {
						t.Errorf("batch query during churn: %v", r.Err)
						return
					}
				}
			}
		}(703 + int64(w))
	}

	for i, e := range events {
		if err := in.Ingest(e); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if i%157 == 0 {
			if err := in.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	got := s.Graph()
	if got.ContentChecksum() != seq.ContentChecksum() {
		t.Fatalf("coalesced stream diverged from sequential fold: checksum %x != %x", got.ContentChecksum(), seq.ContentChecksum())
	}
	for _, key := range pool {
		wantCost, _ := seq.ArcCost(key[0], key[1])
		gotCost, _ := got.ArcCost(key[0], key[1])
		if gotCost != wantCost {
			t.Fatalf("arc %v: coalesced cost %v, sequential cost %v", key, gotCost, wantCost)
		}
	}

	st := in.Stats()
	if st.Events != nEvents {
		t.Errorf("Events = %d, want %d", st.Events, nEvents)
	}
	if st.AppliedChanges >= st.Events {
		t.Errorf("AppliedChanges = %d, Events = %d: coalescing never collapsed anything", st.AppliedChanges, st.Events)
	}
	if st.Batches == 0 || st.ApplyFailures != 0 {
		t.Errorf("Batches = %d, ApplyFailures = %d", st.Batches, st.ApplyFailures)
	}

	// Close drained, applied and refreshed: the overlay must be fresh and
	// full-speed queries must serve final-metric distances.
	if !s.OverlayFresh() {
		t.Fatal("overlay still stale after Close")
	}
	if n := s.pendingCellCount(); n != 0 {
		t.Errorf("recustomize_pending_cells = %d after Close, want 0", n)
	}
	reply, err := s.Evaluate(protocol.ServerQuery{
		Sources: []roadnet.NodeID{pool[0][0]},
		Dests:   []roadnet.NodeID{pool[1][1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesGraph(t, got, reply)
}

// TestChurnSoak is the sustained-churn soak: a continuous event stream over a
// hot arc pool, with every applied batch verified against the reference
// Dijkstra on the post-batch snapshot, a monitor bounding the stale-query
// window, and prewarmed profile layers that must stay untouched by the churn.
func TestChurnSoak(t *testing.T) {
	g := updateTestGraph(t, 100, 711)
	cfg := DefaultConfig()
	cfg.Strategy = StrategyHybrid
	cfg.BuildCH = true
	cfg.PartitionCells = 6
	s := MustNew(g, cfg)

	pool, orig := arcPool(g, 16)
	rng := rand.New(rand.NewSource(712))

	// Per-batch verification runs on the coalescer goroutine, right after the
	// snapshot swap and before the next batch can apply — the graph it reads
	// is exactly the one the batch produced. Errors are collected, not
	// Fatal-ed: FailNow must not kill the coalescer goroutine.
	var verifyMu sync.Mutex
	var verifyErrs []string
	verified := 0
	vrng := rand.New(rand.NewSource(713))
	onApplied := func(changes []roadnet.ArcWeightChange, gen uint64) {
		cur := s.Graph()
		acc := storage.NewMemoryGraph(cur)
		for i := 0; i < 2; i++ {
			src := roadnet.NodeID(vrng.Intn(g.NumNodes()))
			dst := roadnet.NodeID(vrng.Intn(g.NumNodes()))
			reply, err := s.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{src}, Dests: []roadnet.NodeID{dst}})
			verifyMu.Lock()
			if err != nil {
				verifyErrs = append(verifyErrs, fmt.Sprintf("gen %d: query (%d,%d): %v", gen, src, dst, err))
			} else {
				for _, cand := range reply.Paths {
					// No t.Fatal-based helpers here: FailNow on the coalescer
					// goroutine would kill it and hang Close.
					want := math.Inf(1)
					if p, _, derr := search.ReferenceDijkstra(acc, cand.Source, cand.Dest); derr != nil {
						verifyErrs = append(verifyErrs, fmt.Sprintf("gen %d: reference (%d,%d): %v", gen, cand.Source, cand.Dest, derr))
						continue
					} else if len(p.Nodes) > 0 || cand.Source == cand.Dest {
						want = p.Cost
					}
					got := cand.Cost
					if len(cand.Nodes) == 0 && cand.Source != cand.Dest {
						got = math.Inf(1)
					}
					if got != want {
						verifyErrs = append(verifyErrs,
							fmt.Sprintf("gen %d (batch of %d): pair (%d,%d) served %v, snapshot says %v", gen, len(changes), cand.Source, cand.Dest, got, want))
					}
				}
				verified++
			}
			verifyMu.Unlock()
		}
	}

	in, err := s.NewIngestor(traffic.Config{
		MaxBatch:  16,
		MaxDelay:  2 * time.Millisecond,
		OnApplied: onApplied,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Stale-window monitor: the longest contiguous stretch the overlay spent
	// stale must stay near one incremental re-customization latency — far
	// below this generous bound — because the pipelined refresh worker always
	// has at most one run pending and each run starts from the freshest
	// snapshot.
	monitorStop := make(chan struct{})
	var monitorWg sync.WaitGroup
	var worstStale int64 // nanoseconds
	monitorWg.Add(1)
	go func() {
		defer monitorWg.Done()
		var staleSince time.Time
		tick := time.NewTicker(500 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-monitorStop:
				return
			case <-tick.C:
				if s.OverlayFresh() {
					staleSince = time.Time{}
					continue
				}
				if staleSince.IsZero() {
					staleSince = time.Now()
				} else if d := time.Since(staleSince); int64(d) > worstStale {
					worstStale = int64(d)
				}
			}
		}
	}()

	const nEvents = 800
	for i := 0; i < nEvents; i++ {
		key := pool[rng.Intn(len(pool))]
		cost := 1 + rng.Float64()*25
		if rng.Intn(5) == 0 {
			cost = orig[key]
		}
		if err := in.Ingest(roadnet.ArcWeightChange{From: key[0], To: key[1], NewCost: cost}); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	// Bad events are rejected at the boundary without disturbing the stream.
	for _, bad := range []roadnet.ArcWeightChange{
		{From: pool[0][0], To: pool[0][1], NewCost: math.NaN()},
		{From: pool[0][0], To: pool[0][1], NewCost: -3},
		{From: roadnet.NodeID(g.NumNodes() + 7), To: 0, NewCost: 1},
	} {
		if err := in.Ingest(bad); err == nil {
			t.Errorf("bad event %+v accepted", bad)
		}
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	close(monitorStop)
	monitorWg.Wait()

	verifyMu.Lock()
	for _, e := range verifyErrs {
		t.Error(e)
	}
	nVerified := verified
	verifyMu.Unlock()
	if nVerified == 0 {
		t.Fatal("per-batch verification never ran")
	}

	st := in.Stats()
	if st.Events != nEvents {
		t.Errorf("Events = %d, want %d", st.Events, nEvents)
	}
	if st.Rejected != 3 {
		t.Errorf("Rejected = %d, want 3", st.Rejected)
	}
	if st.Batches == 0 || st.Batches >= st.Events {
		t.Errorf("Batches = %d for %d events: coalescing ineffective", st.Batches, st.Events)
	}
	if st.CoalesceRatio() <= 1 {
		t.Errorf("coalesce ratio = %v, want > 1", st.CoalesceRatio())
	}
	// Re-customization work scales with batches, not raw events: refresh runs
	// fold, so there are at most as many as batches — and with 16 hot arcs
	// per batch, far fewer than events.
	if st.RefreshRuns == 0 || st.RefreshRuns > st.Batches {
		t.Errorf("RefreshRuns = %d (batches %d): refresh folding broken", st.RefreshRuns, st.Batches)
	}
	if st.RefreshFailures != 0 || st.ApplyFailures != 0 {
		t.Errorf("failures: refresh %d apply %d", st.RefreshFailures, st.ApplyFailures)
	}

	if !s.OverlayFresh() {
		t.Fatal("overlay still stale after Close")
	}
	if n := s.pendingCellCount(); n != 0 {
		t.Errorf("pending cells = %d after Close, want 0", n)
	}
	if worst := time.Duration(worstStale); worst > 5*time.Second {
		t.Errorf("worst stale window %v: refresh pipeline is not keeping up", worst)
	}
	reply, err := s.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{2}, Dests: []roadnet.NodeID{9}})
	if err != nil {
		t.Fatal(err)
	}
	checkReplyMatchesGraph(t, s.Graph(), reply)
}

// TestIngestorRefusedConfigurations mirrors the UpdateWeights refusals at
// pipeline-construction time.
func TestIngestorRefusedConfigurations(t *testing.T) {
	g := updateTestGraph(t, 40, 721)

	paged := DefaultConfig()
	paged.Paged = true
	sp := MustNew(g, paged)
	if _, err := sp.NewIngestor(traffic.Config{}); err == nil {
		t.Error("ingestion on a paged server must be refused")
	}

	alt := DefaultConfig()
	alt.Strategy = search.StrategyPairwiseALT
	alt.Landmarks = 4
	sa := MustNew(g, alt)
	if _, err := sa.NewIngestor(traffic.Config{}); err == nil {
		t.Error("ingestion under pairwise-alt must be refused")
	}
}
