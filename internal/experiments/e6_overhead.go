package experiments

import (
	"time"

	"opaque/internal/core"
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// E6ObfuscatorOverhead measures the Section IV claim that centralized
// obfuscation at the trusted middlebox is efficient: the time the obfuscator
// spends clustering, picking fakes and filtering results is small compared to
// the server's path-search time, across batch sizes.
type E6ObfuscatorOverhead struct{}

// ID implements Runner.
func (E6ObfuscatorOverhead) ID() string { return "E6" }

// Description implements Runner.
func (E6ObfuscatorOverhead) Description() string {
	return "Obfuscator overhead (clustering + fake selection + filtering) vs server search time across batch sizes (Section IV)"
}

// Run implements Runner.
func (E6ObfuscatorOverhead) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.Grid
	netCfg.Nodes = networkNodes(scale, 2500, 30000)
	netCfg.Seed = 606
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}

	batchSizes := []int{8, 16, 32}
	if scale == Full {
		batchSizes = append(batchSizes, 64, 128, 256)
	}

	table := &Table{
		ID:    "E6",
		Title: "Obfuscator overhead vs server processing time (shared mode, fS=fT=4)",
		Columns: []string{
			"batch size", "obf queries", "obfuscation ms", "filtering ms", "server ms", "obfuscator share of total",
		},
	}

	for _, batch := range batchSizes {
		cfg := core.DefaultConfig()
		cfg.Server = server.DefaultConfig()
		cfg.Server.Paged = true
		cfg.Server.PageConfig = storage.DefaultConfig()
		cfg.Obfuscator.Obfuscation.Mode = obfuscate.Shared
		cfg.Obfuscator.Obfuscation.Selector = defaultBandSelector(g, uint64(900+batch))
		cfg.Obfuscator.Obfuscation.MaxClusterSize = 8
		sys, err := core.NewSystem(g, cfg)
		if err != nil {
			return nil, err
		}
		wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: batch, Seed: uint64(1000 + batch)})
		if err != nil {
			return nil, err
		}
		reqs := requestsFromWorkload(wl, 4, 4)

		wallStart := time.Now()
		if _, err := sys.ProcessBatch(reqs); err != nil {
			return nil, err
		}
		wall := time.Since(wallStart)

		st := sys.Obfuscator.Stats()
		obfMS := float64(st.ObfuscationNanos) / 1e6
		filtMS := float64(st.FilterNanos) / 1e6
		serverMS := float64(wall.Nanoseconds())/1e6 - obfMS - filtMS
		if serverMS < 0 {
			serverMS = 0
		}
		share := 0.0
		if wall > 0 {
			share = (obfMS + filtMS) / (float64(wall.Nanoseconds()) / 1e6)
		}
		table.AddRow(batch, st.ObfuscatedSent, obfMS, filtMS, serverMS, share)
	}
	table.AddNote("Section IV expectation: the obfuscator's share of end-to-end time stays small (well under half) and does not grow faster than the batch size.")
	return []*Table{table}, nil
}
