package experiments

import (
	"time"

	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// E7Scaling measures how the obfuscated path query processor scales with the
// road-network size, for both evaluation strategies. The per-query cost is
// governed by the Lemma 1 search area, not the total network size, so cost
// should grow with the typical ||s,t|| (which grows with the extent) rather
// than with raw node count once queries are distance-banded.
type E7Scaling struct{}

// ID implements Runner.
func (E7Scaling) ID() string { return "E7" }

// Description implements Runner.
func (E7Scaling) Description() string {
	return "Obfuscated query processing cost vs network size, SSMD vs pairwise strategy"
}

// Run implements Runner.
func (E7Scaling) Run(scale Scale) ([]*Table, error) {
	nodeCounts := []int{1000, 4000, 9000}
	if scale == Full {
		nodeCounts = append(nodeCounts, 25000, 64000)
	}
	nQueries := queries(scale, 15, 60)
	const fs, ft = 2, 4

	table := &Table{
		ID:    "E7",
		Title: "Scaling with network size (grid, fS=2 fT=4, distance-banded workload)",
		Columns: []string{
			"nodes", "strategy", "mean settled nodes/query", "mean page faults/query", "mean wall time ms/query",
		},
	}

	for _, nodes := range nodeCounts {
		netCfg := gen.DefaultNetworkConfig()
		netCfg.Kind = gen.Grid
		netCfg.Nodes = nodes
		netCfg.Seed = uint64(7000 + nodes)
		g, err := gen.Generate(netCfg)
		if err != nil {
			return nil, err
		}
		// Keep the query radius a fixed fraction of the extent so the
		// workload is comparable across sizes.
		wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{
			Kind:        gen.DistanceBand,
			Queries:     nQueries,
			MinDistance: 0.10 * netCfg.Extent,
			MaxDistance: 0.25 * netCfg.Extent,
			Seed:        uint64(7100 + nodes),
		})
		if err != nil {
			return nil, err
		}
		obf, err := obfuscate.New(g, obfuscate.Config{
			Mode:     obfuscate.Independent,
			Cluster:  obfuscate.ClusterNone,
			Selector: defaultBandSelector(g, uint64(7200+nodes)),
			Seed:     uint64(7300 + nodes),
		})
		if err != nil {
			return nil, err
		}
		reqs := requestsFromWorkload(wl, fs, ft)
		plans := make([]obfuscate.Plan, len(reqs))
		for i := range reqs {
			p, err := obf.Obfuscate(reqs[i : i+1])
			if err != nil {
				return nil, err
			}
			plans[i] = p
		}

		for _, strategy := range []string{"ssmd", "pairwise"} {
			srvCfg := server.DefaultConfig()
			srvCfg.Paged = true
			srvCfg.PageConfig = storage.DefaultConfig()
			srvCfg.BufferPages = 128
			if strategy == "ssmd" {
				srvCfg.Strategy = "ssmd"
			} else {
				srvCfg.Strategy = "pairwise"
			}
			srv, err := server.New(g, srvCfg)
			if err != nil {
				return nil, err
			}
			var settled, faults, wallMS []float64
			for _, plan := range plans {
				q := plan.Queries[0]
				ioBefore := srv.IOStats()
				start := time.Now()
				reply, err := srv.Evaluate(protocol.ServerQuery{Sources: q.Sources, Dests: q.Dests})
				if err != nil {
					return nil, err
				}
				wallMS = append(wallMS, float64(time.Since(start).Nanoseconds())/1e6)
				ioAfter := srv.IOStats()
				settled = append(settled, float64(reply.SettledNodes))
				faults = append(faults, float64(ioAfter.Faults-ioBefore.Faults))
			}
			table.AddRow(g.NumNodes(), strategy, meanFloat(settled), meanFloat(faults), meanFloat(wallMS))
		}
	}
	table.AddNote("Expectation: SSMD stays below pairwise at every size; per-query cost grows with the (extent-proportional) query radius, roughly quadratically in it, consistent with the O(||s,t||²) model.")
	return []*Table{table}, nil
}
