package experiments

import (
	"math/rand"
	"time"

	"opaque/internal/ch"
	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// E15ManyToMany measures the three ways the server can evaluate a Q(S, T)
// candidate table on one map — SSMD spanning trees, pairwise CH, and the
// many-to-many bucket engine — across table shapes from point queries (1×1)
// to very wide tables (128×128 at full scale). The table's job is to expose
// the crossover the "hybrid" strategy's CHMaxPairs cutover must encode:
// pairwise CH wins true point queries (its bidirectional stopping rule
// prunes each search; MTM's sweeps run to exhaustion), MTM wins everything
// wide (|S|+|T| upward sweeps against |S|·|T| point queries, from 2×2 up in
// measurements on both graph scales), and SSMD — the paper's evaluation —
// trails both once an overlay exists. The "hybrid route" column states
// where the server's default cutover (server.DefaultCHMaxPairs, inclusive)
// actually sends each shape, so an inconsistency between measurement and
// routing is visible in one glance. A final distance-only MTM column shows
// what candidate filtering pays when no caller ever reads the paths.
type E15ManyToMany struct{}

// ID implements Runner.
func (E15ManyToMany) ID() string { return "E15" }

// Description implements Runner.
func (E15ManyToMany) Description() string {
	return "Many-to-many bucket tables on the CH overlay: crossover vs pairwise CH and SSMD across |S|x|T| shapes"
}

// Run implements Runner.
func (E15ManyToMany) Run(scale Scale) ([]*Table, error) {
	nodes := networkNodes(scale, 6000, 50000)
	shapes := [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 4}, {8, 8}, {16, 16}, {32, 32}}
	if scale == Full {
		shapes = append(shapes, [2]int{64, 64}, [2]int{128, 128})
	}
	reps := queries(scale, 2, 3)

	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = nodes
	netCfg.Seed = 1515
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	acc := storage.NewMemoryGraph(g)

	buildStart := time.Now()
	overlay, err := ch.Build(g)
	if err != nil {
		return nil, err
	}
	buildMS := float64(time.Since(buildStart).Milliseconds())

	wsPool := search.NewWorkspacePool()
	mtm := ch.NewMTM(overlay, wsPool)
	ssmdProc := search.NewProcessor(acc,
		search.WithStrategy(search.StrategySSMD),
		search.WithWorkspacePool(wsPool))
	chProc := search.NewProcessor(acc,
		search.WithStrategy(search.StrategyPointEngine),
		search.WithPointEngine(ch.NewEngine(overlay, wsPool)),
		search.WithWorkspacePool(wsPool))
	mtmProc := search.NewProcessor(acc,
		search.WithStrategy(search.StrategyTableEngine),
		search.WithTableEngine(mtm),
		search.WithWorkspacePool(wsPool))

	tbl := &Table{
		ID:      "E15",
		Title:   "Q(S,T) table evaluation: SSMD vs pairwise CH vs many-to-many buckets (" + itoa(nodes) + " nodes)",
		Columns: []string{"|S|x|T|", "pairs", "ssmd ms", "pairwise-ch ms", "mtm ms", "mtm dist-only ms", "fastest", "hybrid route"},
	}

	rng := rand.New(rand.NewSource(1516))
	pick := func(k int) []roadnet.NodeID {
		out := make([]roadnet.NodeID, k)
		for i := range out {
			out[i] = roadnet.NodeID(rng.Intn(g.NumNodes()))
		}
		return out
	}

	type engine struct {
		name string
		run  func(S, T []roadnet.NodeID) error
	}
	var dst []float64
	engines := []engine{
		{"ssmd", func(S, T []roadnet.NodeID) error { _, err := ssmdProc.Evaluate(S, T); return err }},
		{"pairwise-ch", func(S, T []roadnet.NodeID) error { _, err := chProc.Evaluate(S, T); return err }},
		{"mtm", func(S, T []roadnet.NodeID) error { _, err := mtmProc.Evaluate(S, T); return err }},
		{"mtm dist-only", func(S, T []roadnet.NodeID) error {
			var err error
			dst, _, err = mtm.DistancesInto(dst, S, T)
			return err
		}},
	}

	for _, shape := range shapes {
		ns, nt := shape[0], shape[1]
		// The same endpoint sets feed every engine of one row.
		sets := make([][2][]roadnet.NodeID, reps)
		for r := range sets {
			sets[r] = [2][]roadnet.NodeID{pick(ns), pick(nt)}
		}
		wall := make([]float64, len(engines))
		for ei, e := range engines {
			// One untimed evaluation first, so pool warmup (workspaces, the
			// bucket arena) and cache effects are not charged to whichever
			// engine happens to run first.
			if err := e.run(sets[0][0], sets[0][1]); err != nil {
				return nil, err
			}
			start := time.Now()
			for _, st := range sets {
				if err := e.run(st[0], st[1]); err != nil {
					return nil, err
				}
			}
			wall[ei] = float64(time.Since(start).Microseconds()) / 1000 / float64(reps)
		}
		// The fastest *path-producing* engine decides the row; the
		// distance-only column is informational.
		best := 0
		for ei := 1; ei < 3; ei++ {
			if wall[ei] < wall[best] {
				best = ei
			}
		}
		fastest := engines[best].name
		route := "mtm"
		if ns*nt <= server.DefaultCHMaxPairs {
			route = "ch"
		}
		tbl.AddRow(itoa(ns)+"x"+itoa(nt), ns*nt, wall[0], wall[1], wall[2], wall[3], fastest, route)
	}

	tbl.AddNote("One CH overlay serves the pairwise and MTM engines; contraction took %d ms (offline, persisted in deployments). All engines evaluated identical endpoint sets; times are per table, averaged over %d repetitions.", int(buildMS), reps)
	tbl.AddNote("Expectation: pairwise-ch wins 1x1 (pruned bidirectional searches; mtm sweeps run to exhaustion), mtm wins from 2x2 up and by orders of magnitude on wide tables. The 'hybrid route' column is the server's inclusive CHMaxPairs = %d cutover, chosen to agree with this table: only point-ish shapes stay pairwise.", server.DefaultCHMaxPairs)
	tbl.AddNote("'mtm dist-only' reuses one output buffer (0 allocs/op steady state) and skips path materialisation — the fast path for distance-only candidate filtering.")
	return []*Table{tbl}, nil
}
