package experiments

import (
	"math"

	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
	"opaque/internal/protocol"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// E8Strategies is the fake-endpoint selection ablation: the paper notes that
// finding fake sources and destinations "requires the knowledge of the
// underlying road network" (Section IV) but leaves the policy open. We
// compare uniform, ring-band and density-aware selection on three axes:
// processing cost (fakes far away blow up the Lemma 1 radius), nominal breach
// probability (identical by construction), and breach probability against a
// prior-weighted adversary (implausible fakes are discounted).
type E8Strategies struct{}

// ID implements Runner.
func (E8Strategies) ID() string { return "E8" }

// Description implements Runner.
func (E8Strategies) Description() string {
	return "Fake-endpoint selection strategies: processing cost vs robustness to a prior-weighted adversary"
}

// Run implements Runner.
func (E8Strategies) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = networkNodes(scale, 2500, 30000)
	netCfg.Seed = 808
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	srvCfg := server.DefaultConfig()
	srvCfg.Paged = true
	srvCfg.PageConfig = storage.DefaultConfig()
	srv, err := server.New(g, srvCfg)
	if err != nil {
		return nil, err
	}
	wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Hotspot, Queries: queries(scale, 30, 200), Hotspots: 4, HotspotSpread: 0.04, Seed: 809})
	if err != nil {
		return nil, err
	}
	const fs, ft = 4, 4
	reqs := requestsFromWorkload(wl, fs, ft)

	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)

	selectors := []obfuscate.EndpointSelector{
		obfuscate.NewUniformSelector(81),
		obfuscate.MustNewRingBandSelector(0.02*extent, 0.15*extent, 82),
		obfuscate.MustNewDensityAwareSelector(0.15*extent, 83),
	}
	uniformAdv := privacy.NewUniformAdversary(g)
	weightedAdv := privacy.NewWeightedAdversary(g)

	table := &Table{
		ID:    "E8",
		Title: "Fake endpoint selection strategies (independent obfuscation, fS=fT=4)",
		Columns: []string{
			"strategy", "mean settled nodes/query", "mean page faults/query", "breach (uniform adv)", "breach (weighted adv)", "mean fake distance / extent",
		},
	}

	for _, sel := range selectors {
		obf, err := obfuscate.New(g, obfuscate.Config{
			Mode:     obfuscate.Independent,
			Cluster:  obfuscate.ClusterNone,
			Selector: sel,
			Seed:     84,
		})
		if err != nil {
			return nil, err
		}
		srv.ResetStats()
		var settled, faults, breachU, breachW, fakeDist []float64
		for i := range reqs {
			plan, err := obf.Obfuscate(reqs[i : i+1])
			if err != nil {
				return nil, err
			}
			q := plan.Queries[0]
			ioBefore := srv.IOStats()
			reply, err := srv.Evaluate(protocol.ServerQuery{Sources: q.Sources, Dests: q.Dests})
			if err != nil {
				return nil, err
			}
			ioAfter := srv.IOStats()
			settled = append(settled, float64(reply.SettledNodes))
			faults = append(faults, float64(ioAfter.Faults-ioBefore.Faults))
			breachU = append(breachU, uniformAdv.BreachProbability(q, reqs[i]))
			breachW = append(breachW, weightedAdv.BreachProbability(q, reqs[i]))
			// Mean Euclidean distance between the true endpoints and the
			// fakes of this query, normalised by extent.
			d, n := 0.0, 0
			for _, s := range q.Sources {
				if s != reqs[i].Source {
					d += g.Euclid(s, reqs[i].Source)
					n++
				}
			}
			for _, t := range q.Dests {
				if t != reqs[i].Dest {
					d += g.Euclid(t, reqs[i].Dest)
					n++
				}
			}
			if n > 0 {
				fakeDist = append(fakeDist, d/float64(n)/extent)
			}
		}
		table.AddRow(sel.Name(), meanFloat(settled), meanFloat(faults), meanFloat(breachU), meanFloat(breachW), meanFloat(fakeDist))
	}
	table.AddNote("Expectation: uniform fakes cost the most (largest search radius) with the same nominal breach; ring-band is the cheapest; density-aware costs about the same as ring-band but resists the weighted adversary better on hotspot workloads.")
	return []*Table{table}, nil
}
