package experiments

import (
	"opaque/internal/costmodel"
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/storage"
)

// E3CostModel validates Lemma 1: the measured processing cost of an
// obfuscated path query Q(S, T) (settled nodes and page faults under the
// connectivity-clustered layout) is proportional to
// Σ_{s∈S} max_{t∈T} ||s,t||². It also runs the storage ablation: with a
// random node-to-page assignment the page-fault count no longer tracks the
// covered area, which is why the paper's cost argument assumes clustered
// storage.
type E3CostModel struct{}

// ID implements Runner.
func (E3CostModel) ID() string { return "E3" }

// Description implements Runner.
func (E3CostModel) Description() string {
	return "Lemma 1: measured cost vs Σ_s max_t ||s,t||² model, clustered vs random page layout"
}

// Run implements Runner.
func (E3CostModel) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.Grid
	netCfg.Nodes = networkNodes(scale, 2500, 40000)
	netCfg.Seed = 303
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: queries(scale, 25, 150), Seed: 304})
	if err != nil {
		return nil, err
	}
	sizes := [][2]int{{1, 1}, {2, 2}, {2, 4}, {4, 4}}
	if scale == Full {
		sizes = append(sizes, [2]int{4, 8}, [2]int{8, 8})
	}

	table := &Table{
		ID:    "E3",
		Title: "Lemma 1 cost model calibration (grid network, " + itoa(g.NumNodes()) + " nodes)",
		Columns: []string{
			"|S|", "|T|", "mean model cost (Euclid)", "mean settled nodes", "corr(model, settled)", "mean page faults (ccam)", "corr(model, faults ccam)", "mean page faults (random)", "corr(model, faults random)",
		},
	}

	buildPaged := func(part storage.Partitioning) (*storage.PagedGraph, error) {
		cfg := storage.DefaultConfig()
		cfg.Partitioning = part
		store, err := storage.Build(g, cfg)
		if err != nil {
			return nil, err
		}
		pool, err := storage.NewBufferPool(64)
		if err != nil {
			return nil, err
		}
		return storage.NewPagedGraph(store, pool), nil
	}

	dist := costmodel.EuclideanDistance(g)

	for _, sz := range sizes {
		fs, ft := sz[0], sz[1]
		obf, err := obfuscate.New(g, obfuscate.Config{
			Mode:     obfuscate.Independent,
			Cluster:  obfuscate.ClusterNone,
			Selector: defaultBandSelector(g, uint64(31+fs*7+ft)),
			Seed:     uint64(fs*13 + ft),
		})
		if err != nil {
			return nil, err
		}
		pagedCCAM, err := buildPaged(storage.ConnectivityClustered)
		if err != nil {
			return nil, err
		}
		pagedRandom, err := buildPaged(storage.RandomAssignment)
		if err != nil {
			return nil, err
		}
		srvCCAM := newAccessorServer(pagedCCAM)
		srvRandom := newAccessorServer(pagedRandom)

		var modelSamples, settledSamples, faultCCAM, faultRandom []float64
		for i, p := range wl {
			req := obfuscate.Request{User: obfuscate.UserID(userName(i)), Source: p.Source, Dest: p.Dest, FS: fs, FT: ft}
			plan, err := obf.Obfuscate([]obfuscate.Request{req})
			if err != nil {
				return nil, err
			}
			q := plan.Queries[0]
			model, err := costmodel.ObfuscatedQueryCost(dist, q.Sources, q.Dests)
			if err != nil {
				return nil, err
			}
			// Evaluate on the clustered layout.
			replyC, err := srvCCAM.evaluate(q.Sources, q.Dests)
			if err != nil {
				return nil, err
			}
			// Evaluate on the random layout.
			replyR, err := srvRandom.evaluate(q.Sources, q.Dests)
			if err != nil {
				return nil, err
			}
			modelSamples = append(modelSamples, model)
			settledSamples = append(settledSamples, float64(replyC.SettledNodes))
			faultCCAM = append(faultCCAM, float64(replyC.PageFaults))
			faultRandom = append(faultRandom, float64(replyR.PageFaults))
		}
		calSettled := costmodel.Calibrate(pairSamples(modelSamples, settledSamples))
		calCCAM := costmodel.Calibrate(pairSamples(modelSamples, faultCCAM))
		calRandom := costmodel.Calibrate(pairSamples(modelSamples, faultRandom))
		table.AddRow(
			fs, ft,
			meanFloat(modelSamples),
			meanFloat(settledSamples), calSettled.Correlation,
			meanFloat(faultCCAM), calCCAM.Correlation,
			meanFloat(faultRandom), calRandom.Correlation,
		)
	}
	table.AddNote("Lemma 1 expectation: settled nodes and clustered-layout page faults correlate strongly (>0.7) with Σ_s max_t ||s,t||²; the random layout's faults grow with settled nodes but with a much larger constant (every expansion touches a new page).")
	return []*Table{table}, nil
}

// accessorServer is a minimal evaluation helper for experiments that need to
// swap storage layouts without building a full server.Server per layout.
// Every evaluation starts from a cold buffer pool, so the fault count equals
// the number of distinct pages the search touches — the quantity the CCAM
// area argument of Lemma 1 is about (a warm shared pool would hide it behind
// cross-query reuse, which E7 measures instead).
type accessorServer struct {
	paged *storage.PagedGraph
}

func newAccessorServer(p *storage.PagedGraph) *accessorServer { return &accessorServer{paged: p} }

func (s *accessorServer) evaluate(sources, dests []roadnet.NodeID) (protocol.ServerReply, error) {
	s.paged.Pool().Flush()
	proc := newSSMDProcessor(s.paged)
	res, err := proc.Evaluate(sources, dests)
	if err != nil {
		return protocol.ServerReply{}, err
	}
	after := s.paged.Pool().Stats()
	return protocol.ServerReply{
		SettledNodes: res.Stats.SettledNodes,
		PageFaults:   after.Faults,
	}, nil
}

func pairSamples(model, measured []float64) []costmodel.Sample {
	n := len(model)
	if len(measured) < n {
		n = len(measured)
	}
	out := make([]costmodel.Sample, n)
	for i := 0; i < n; i++ {
		out[i] = costmodel.Sample{Model: model[i], Measured: measured[i]}
	}
	return out
}
