package experiments

import (
	"math"

	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// fixture bundles the shared pieces most experiments need: a network, a paged
// server (so page-fault counts are available), and a workload.
type fixture struct {
	Graph    *roadnet.Graph
	Server   *server.Server
	Workload []gen.QueryPair
}

// networkNodes returns the node budget for the given scale.
func networkNodes(scale Scale, small, full int) int {
	if scale == Full {
		return full
	}
	return small
}

// queries returns the workload size for the given scale.
func queries(scale Scale, small, full int) int {
	if scale == Full {
		return full
	}
	return small
}

// newFixture builds the default experiment fixture: a grid network, a paged
// SSMD server and a uniform workload.
func newFixture(scale Scale, kind gen.NetworkKind, seed uint64) (*fixture, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = kind
	netCfg.Nodes = networkNodes(scale, 2500, 40000)
	netCfg.Seed = seed
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	srvCfg := server.DefaultConfig()
	srvCfg.Paged = true
	srvCfg.PageConfig = storage.DefaultConfig()
	srvCfg.BufferPages = 128
	srv, err := server.New(g, srvCfg)
	if err != nil {
		return nil, err
	}
	wlCfg := gen.DefaultWorkloadConfig()
	wlCfg.Queries = queries(scale, 60, 400)
	wlCfg.Seed = seed + 1
	wl, err := gen.GenerateWorkload(g, wlCfg)
	if err != nil {
		return nil, err
	}
	return &fixture{Graph: g, Server: srv, Workload: wl}, nil
}

// defaultBandSelector returns a ring-band selector sized relative to the
// graph extent: fakes land between 2% and 15% of the extent away from the
// true endpoint.
func defaultBandSelector(g *roadnet.Graph, seed uint64) obfuscate.EndpointSelector {
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	if extent <= 0 {
		extent = 1
	}
	return obfuscate.MustNewRingBandSelector(0.02*extent, 0.15*extent, seed)
}

// requestsFromWorkload converts query pairs into obfuscation requests with
// uniform protection settings.
func requestsFromWorkload(pairs []gen.QueryPair, fs, ft int) []obfuscate.Request {
	out := make([]obfuscate.Request, len(pairs))
	for i, p := range pairs {
		out[i] = obfuscate.Request{
			User:   obfuscate.UserID(userName(i)),
			Source: p.Source,
			Dest:   p.Dest,
			FS:     fs,
			FT:     ft,
		}
	}
	return out
}

// userName produces stable synthetic user identifiers.
func userName(i int) string {
	return "user-" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	if neg {
		return "-" + string(digits)
	}
	return string(digits)
}

// meanInt returns the mean of an int slice (0 for empty).
func meanInt(v []int) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0
	for _, x := range v {
		s += x
	}
	return float64(s) / float64(len(v))
}

// meanFloat returns the mean of a float64 slice (0 for empty).
func meanFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
