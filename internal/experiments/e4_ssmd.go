package experiments

import (
	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// newSSMDProcessor builds the default (sharing) obfuscated-query processor
// over an accessor; shared by E3 and E4.
func newSSMDProcessor(acc storage.Accessor) *search.Processor {
	return search.NewProcessor(acc, search.WithStrategy(search.StrategySSMD))
}

// E4SSMD measures the Section III-B claim that motivates the whole design:
// searching paths from a single source to multiple destinations with one
// spanning tree costs about the same as a single 1-to-1 search when the
// destinations' radii are similar, whereas issuing one independent Dijkstra
// per destination multiplies the cost by |T|.
type E4SSMD struct{}

// ID implements Runner.
func (E4SSMD) ID() string { return "E4" }

// Description implements Runner.
func (E4SSMD) Description() string {
	return "SSMD spanning-tree sharing vs repeated point-to-point searches as |T| grows (Section III-B)"
}

// Run implements Runner.
func (E4SSMD) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.Grid
	netCfg.Nodes = networkNodes(scale, 2500, 40000)
	netCfg.Seed = 404
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	acc := storage.NewMemoryGraph(g)
	nQueries := queries(scale, 20, 100)
	wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: nQueries, Seed: 405})
	if err != nil {
		return nil, err
	}

	minX, minY, maxX, maxY := g.Bounds()
	extent := maxX - minX
	if maxY-minY > extent {
		extent = maxY - minY
	}

	destCounts := []int{1, 2, 4, 8}
	if scale == Full {
		destCounts = append(destCounts, 16)
	}
	spreads := []struct {
		name   string
		radius float64
	}{
		{"tight (5% extent)", 0.05 * extent},
		{"wide (30% extent)", 0.30 * extent},
	}

	table := &Table{
		ID:      "E4",
		Title:   "Single-source multi-destination sharing (grid network, " + itoa(g.NumNodes()) + " nodes)",
		Columns: []string{"dest spread", "|T|", "SSMD settled nodes", "pairwise settled nodes", "SSMD / 1-to-1 ratio", "pairwise / 1-to-1 ratio"},
	}

	for _, spread := range spreads {
		// Baseline: settled nodes of the plain 1-to-1 searches (|T| = 1).
		var base []float64
		for _, size := range destCounts {
			var ssmdSettled, pairSettled []float64
			for i, p := range wl {
				dests := destCluster(g, p.Dest, size, spread.radius, uint64(900+i))
				// SSMD evaluation.
				res, err := search.SSMD(acc, p.Source, dests)
				if err != nil {
					return nil, err
				}
				ssmdSettled = append(ssmdSettled, float64(res.Stats.SettledNodes))
				// Pairwise evaluation.
				total := 0
				for _, d := range dests {
					_, st, err := search.Dijkstra(acc, p.Source, d)
					if err != nil {
						return nil, err
					}
					total += st.SettledNodes
				}
				pairSettled = append(pairSettled, float64(total))
			}
			if size == 1 {
				base = ssmdSettled
			}
			baseMean := meanFloat(base)
			ratioSSMD := 0.0
			ratioPair := 0.0
			if baseMean > 0 {
				ratioSSMD = meanFloat(ssmdSettled) / baseMean
				ratioPair = meanFloat(pairSettled) / baseMean
			}
			table.AddRow(spread.name, size, meanFloat(ssmdSettled), meanFloat(pairSettled), ratioSSMD, ratioPair)
		}
	}
	table.AddNote("Section III-B expectation: with tight destination spread the SSMD ratio stays near 1 while the pairwise ratio grows roughly linearly in |T|; with wide spread SSMD grows too (the max_t radius grows) but stays below pairwise.")
	return []*Table{table}, nil
}

// destCluster returns `size` destination nodes: the true destination plus
// size-1 nodes drawn within radius of it (deterministic given seed).
func destCluster(g *roadnet.Graph, truth roadnet.NodeID, size int, radius float64, seed uint64) []roadnet.NodeID {
	out := []roadnet.NodeID{truth}
	if size <= 1 {
		return out
	}
	t := g.Node(truth)
	candidates := g.NodesWithin(t.X, t.Y, radius)
	// Deterministic pick: walk the candidate list once, starting from a
	// seed-derived offset, skipping the true destination.
	if len(candidates) > 1 {
		start := int(seed % uint64(len(candidates)))
		for i := 0; i < len(candidates) && len(out) < size; i++ {
			c := candidates[(start+i)%len(candidates)]
			if c == truth {
				continue
			}
			out = append(out, c)
		}
	}
	return out
}
