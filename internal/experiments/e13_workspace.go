package experiments

import (
	"runtime"
	"time"

	"opaque/internal/gen"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// E13WorkspaceHotPath measures the zero-allocation query hot path: the
// epoch-stamped search workspaces (search.Workspace) against the fresh-slice
// implementations they replaced (search.ReferenceDijkstra). Every obfuscated
// query Q(S, T) costs the server |S| SSMD searches, so per-search constant
// factors multiply straight into server throughput; before the refactor even
// a tiny early-terminating point query allocated and Inf-filled two O(n)
// label arrays. The workload is deliberately local (distance-band pairs a
// few percent of the map apart), the regime where the O(n) setup dominates
// the O(touched) search — and the regime real navigation traffic lives in.
//
// The table reports, per graph size and engine, wall time, throughput,
// speedup over the fresh-slice baseline and heap allocations per query
// (measured with runtime.MemStats deltas): pooled full-path queries shed the
// label-array allocations, and pooled distance-only queries run at ~0
// allocs/query in steady state.
type E13WorkspaceHotPath struct{}

// ID implements Runner.
func (E13WorkspaceHotPath) ID() string { return "E13" }

// Description implements Runner.
func (E13WorkspaceHotPath) Description() string {
	return "Epoch-stamped workspace hot path vs fresh-slice search: allocs/query and queries/sec across graph sizes"
}

// Run implements Runner.
func (E13WorkspaceHotPath) Run(scale Scale) ([]*Table, error) {
	sizes := []int{networkNodes(scale, 2500, 10000), networkNodes(scale, 10000, 60000)}
	iters := queries(scale, 400, 1500)

	table := &Table{
		ID:      "E13",
		Title:   "Workspace hot path vs fresh-slice search (local point queries, " + itoa(iters) + " queries per engine)",
		Columns: []string{"nodes", "engine", "wall ms", "queries/sec", "speedup", "allocs/query"},
	}

	for _, nodes := range sizes {
		netCfg := gen.DefaultNetworkConfig()
		netCfg.Kind = gen.TigerLike
		netCfg.Nodes = nodes
		netCfg.Seed = 1313
		g, err := gen.Generate(netCfg)
		if err != nil {
			return nil, err
		}
		minX, minY, maxX, maxY := g.Bounds()
		extent := maxX - minX
		if maxY-minY > extent {
			extent = maxY - minY
		}
		wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{
			Kind:        gen.DistanceBand,
			Queries:     queries(scale, 64, 256),
			MinDistance: 0.01 * extent,
			MaxDistance: 0.05 * extent,
			Seed:        1314,
		})
		if err != nil {
			return nil, err
		}
		acc := storage.NewMemoryGraph(g)

		// Warm the workspace pool and the page cache outside the timed
		// sections so every engine sees steady state.
		if _, _, err := search.Dijkstra(acc, wl[0].Source, wl[0].Dest); err != nil {
			return nil, err
		}

		fresh, err := timedRun(iters, func(i int) error {
			pr := wl[i%len(wl)]
			_, _, err := search.ReferenceDijkstra(acc, pr.Source, pr.Dest)
			return err
		})
		if err != nil {
			return nil, err
		}
		pooled, err := timedRun(iters, func(i int) error {
			pr := wl[i%len(wl)]
			_, _, err := search.Dijkstra(acc, pr.Source, pr.Dest)
			return err
		})
		if err != nil {
			return nil, err
		}
		w := search.AcquireWorkspace(acc.NumNodes())
		distOnly, err := timedRun(iters, func(i int) error {
			pr := wl[i%len(wl)]
			_, _, err := w.DijkstraDistance(acc, pr.Source, pr.Dest)
			return err
		})
		w.Release()
		if err != nil {
			return nil, err
		}

		addRow := func(engine string, m measured) {
			speedup := 0.0
			if m.wall > 0 {
				speedup = fresh.wall.Seconds() / m.wall.Seconds()
			}
			table.AddRow(nodes, engine, float64(m.wall.Milliseconds()),
				float64(iters)/m.wall.Seconds(), speedup, float64(m.allocs)/float64(iters))
		}
		addRow("fresh slices (reference)", fresh)
		addRow("pooled workspace, full path", pooled)
		addRow("pooled workspace, distance only", distOnly)
	}

	table.AddNote("Expectation: fresh-slice cost is O(n) per query regardless of trip length (two Inf-filled label arrays plus a map-indexed heap), so its queries/sec falls with graph size while the workspace engines track the touched-node count; speedup should exceed 2x on the larger graph and allocs/query should drop to ~0 for distance-only pooled queries.")
	table.AddNote("Measured with runtime.MemStats Mallocs deltas around single-threaded loops; path-returning engines still allocate the result path, which is why only the distance-only engine reaches zero.")
	return []*Table{table}, nil
}

// measured is one timed, allocation-counted loop.
type measured struct {
	wall   time.Duration
	allocs uint64
}

// timedRun executes fn iters times, measuring wall time and heap allocations.
func timedRun(iters int, fn func(i int) error) (measured, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(i); err != nil {
			return measured{}, err
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return measured{wall: wall, allocs: after.Mallocs - before.Mallocs}, nil
}
