package experiments

import (
	"opaque/internal/core"
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
	"opaque/internal/roadnet"
)

// E11ServerLog quantifies the Section II motivation from the operator's side:
// what the directions search server can mine from its accumulated query log
// under (a) direct no-privacy queries, (b) OPAQUE independent obfuscation and
// (c) OPAQUE shared obfuscation. The metric is the exposure of a specific
// popular destination (the "clinic"): how far its weighted share of logged
// destinations stands above a uniform crowd, plus the overall entropy of the
// logged destination distribution.
type E11ServerLog struct{}

// ID implements Runner.
func (E11ServerLog) ID() string { return "E11" }

// Description implements Runner.
func (E11ServerLog) Description() string {
	return "What the server log reveals: direct queries vs OPAQUE independent/shared obfuscation (Section II motivation)"
}

// Run implements Runner.
func (E11ServerLog) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = networkNodes(scale, 2500, 20000)
	netCfg.Seed = 1101
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	nQueries := queries(scale, 60, 400)
	// A workload where a noticeable fraction of users head to one clinic.
	clinic := g.NearestNode(0.75*netCfg.Extent, 0.25*netCfg.Extent)
	wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: nQueries, Seed: 1102})
	if err != nil {
		return nil, err
	}
	for i := range wl {
		if i%4 == 0 && wl[i].Source != clinic { // every 4th user goes to the clinic
			wl[i].Dest = clinic
		}
	}

	table := &Table{
		ID:    "E11",
		Title: "Server log exposure (" + itoa(nQueries) + " queries, 25% headed to one clinic)",
		Columns: []string{
			"deployment", "clinic share of logged dests", "dest entropy bits", "distinct dests in log", "mean candidate pairs per logged query",
		},
	}

	runDeployment := func(name string, mode obfuscate.Mode, direct bool) error {
		cfg := core.DefaultConfig()
		cfg.Obfuscator.Obfuscation.Mode = mode
		cfg.Obfuscator.Obfuscation.Selector = defaultBandSelector(g, 1103)
		sys, err := core.NewSystem(g, cfg)
		if err != nil {
			return err
		}
		if direct {
			dc := sys.DirectClient()
			for _, p := range wl {
				if _, err := dc.Query(p.Source, p.Dest); err != nil {
					return err
				}
			}
		} else {
			reqs := requestsFromWorkload(wl, 4, 4)
			// Process in batches of 16 to give shared mode something to merge.
			for start := 0; start < len(reqs); start += 16 {
				end := start + 16
				if end > len(reqs) {
					end = len(reqs)
				}
				if _, err := sys.ProcessBatch(reqs[start:end]); err != nil {
					return err
				}
			}
		}
		var observed []privacy.ObservedQuery
		for _, entry := range sys.Server.QueryLog() {
			observed = append(observed, privacy.ObservedQuery{
				Sources: append([]roadnet.NodeID(nil), entry.Sources...),
				Dests:   append([]roadnet.NodeID(nil), entry.Dests...),
			})
		}
		rep := privacy.AnalyzeLog(observed, 5)
		exposure := privacy.HotspotExposure(observed, clinic)
		table.AddRow(name, exposure, rep.DestEntropy, rep.DistinctDests, rep.MeanCandidatesPerQuery)
		return nil
	}

	if err := runDeployment("direct (no privacy)", obfuscate.Independent, true); err != nil {
		return nil, err
	}
	if err := runDeployment("opaque independent", obfuscate.Independent, false); err != nil {
		return nil, err
	}
	if err := runDeployment("opaque shared", obfuscate.Shared, false); err != nil {
		return nil, err
	}
	table.AddNote("Expectation: the clinic's exposure is largest in the direct log and shrinks under obfuscation (fakes dilute its share and raise the log's entropy); shared mode keeps exposure comparable to independent mode while the server sees fewer, larger queries.")
	return []*Table{table}, nil
}
