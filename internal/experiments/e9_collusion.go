package experiments

import (
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
)

// E9Collusion measures the collusion-resistance claim from the abstract:
// shared obfuscated path queries "enhance privacy protection against
// collusion attacks". We compare what happens to the remaining (victim)
// members' breach probability when c of the k users whose queries were merged
// defect and reveal their true endpoints, against the independent-obfuscation
// reference where a victim's query contains only fabricated fakes.
type E9Collusion struct{}

// ID implements Runner.
func (E9Collusion) ID() string { return "E9" }

// Description implements Runner.
func (E9Collusion) Description() string {
	return "Collusion attacks on shared obfuscated path queries: victim breach probability vs coalition size"
}

// Run implements Runner.
func (E9Collusion) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = networkNodes(scale, 2500, 20000)
	netCfg.Seed = 909
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	adversary := privacy.NewUniformAdversary(g)

	const k = 8 // users per shared query
	const fs, ft = 4, 4
	rounds := queries(scale, 10, 50)

	table := &Table{
		ID:    "E9",
		Title: "Collusion attack on shared queries (k=8 users, fS=fT=4, " + itoa(rounds) + " rounds)",
		Columns: []string{
			"fake floor", "colluders c", "victim breach before", "victim breach after", "residual |S|", "residual |T|", "independent-mode breach (reference)",
		},
	}

	independentRef := obfuscate.BreachProbability(fs, ft)

	// Two variants: the plain shared query (no fake floor, as in the paper)
	// and the hardened one that always keeps MinFakesPerSide decoys so a
	// coalition can never strip the sets bare.
	for _, floor := range []int{0, 2} {
		type acc struct {
			before, after, resS, resT float64
			n                         int
		}
		byC := make([]acc, k)
		for round := 0; round < rounds; round++ {
			wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Hotspot, Queries: k, Hotspots: 3, HotspotSpread: 0.05, Seed: uint64(1500 + round)})
			if err != nil {
				return nil, err
			}
			reqs := requestsFromWorkload(wl, fs, ft)
			obf, err := obfuscate.New(g, obfuscate.Config{
				Mode:            obfuscate.Shared,
				Cluster:         obfuscate.ClusterRandom, // force all k into one query
				Selector:        defaultBandSelector(g, uint64(1600+round)),
				MaxClusterSize:  k,
				MinFakesPerSide: floor,
				Seed:            uint64(1700 + round),
			})
			if err != nil {
				return nil, err
			}
			plan, err := obf.Obfuscate(reqs)
			if err != nil {
				return nil, err
			}
			for _, q := range plan.Queries {
				if len(q.Members) < 2 {
					continue
				}
				reports := adversary.CollusionSweep(q)
				for c, rep := range reports {
					if c >= len(byC) || rep.Victims == 0 {
						continue
					}
					byC[c].before += rep.BreachBefore
					byC[c].after += rep.BreachAfter
					byC[c].resS += float64(rep.ResidualSources)
					byC[c].resT += float64(rep.ResidualDests)
					byC[c].n++
				}
			}
		}
		for c, a := range byC {
			if a.n == 0 {
				continue
			}
			n := float64(a.n)
			table.AddRow(floor, c, a.before/n, a.after/n, a.resS/n, a.resT/n, independentRef)
		}
	}
	table.AddNote("Expectation: victim breach probability rises as colluders strip their endpoints from the anonymity sets, but remains bounded because each remaining member's endpoints are still mixed with the other victims'.")
	table.AddNote("With no fake floor an (k-1)-coalition fully exposes the last victim (residual sets 1x1); with MinFakesPerSide=2 the residual sets never fall below 3x3, so even the worst-case coalition leaves the victim a breach probability of at most 1/9.")
	table.AddNote("Against independent obfuscation a coalition of other users learns nothing (reference column), but each independent query costs the server more (see E5); the paper's point is that sharing buys efficiency at a quantifiable, bounded collusion exposure.")
	return []*Table{table}, nil
}
