package experiments

import (
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
)

// E2Breach verifies Definition 2: the breach probability of an obfuscated
// path query is 1/(|S|·|T|) against a uniform adversary, and measures how
// much an adversary with skewed prior knowledge (node popularity) recovers —
// i.e. the gap between the nominal guarantee and a realistic attacker.
type E2Breach struct{}

// ID implements Runner.
func (E2Breach) ID() string { return "E2" }

// Description implements Runner.
func (E2Breach) Description() string {
	return "Breach probability vs obfuscation set sizes fS × fT (Definition 2), uniform and prior-weighted adversaries"
}

// Run implements Runner.
func (E2Breach) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = networkNodes(scale, 2500, 20000)
	netCfg.Seed = 202
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Hotspot, Queries: queries(scale, 40, 200), Hotspots: 4, HotspotSpread: 0.04, Seed: 203})
	if err != nil {
		return nil, err
	}
	uniform := privacy.NewUniformAdversary(g)
	weighted := privacy.NewWeightedAdversary(g)

	sizes := []int{1, 2, 4, 8}
	if scale == Full {
		sizes = []int{1, 2, 4, 8, 16}
	}
	table := &Table{
		ID:    "E2",
		Title: "Breach probability vs protection settings (independent obfuscation, ring-band fakes)",
		Columns: []string{
			"fS", "fT", "nominal 1/(fS*fT)", "measured breach (uniform adv)", "measured breach (weighted adv)", "posterior entropy bits (uniform)",
		},
	}
	for _, fs := range sizes {
		for _, ft := range sizes {
			cfg := obfuscate.Config{
				Mode:     obfuscate.Independent,
				Cluster:  obfuscate.ClusterNone,
				Selector: defaultBandSelector(g, uint64(1000+fs*17+ft)),
				Seed:     uint64(fs*31 + ft),
			}
			obf, err := obfuscate.New(g, cfg)
			if err != nil {
				return nil, err
			}
			reqs := requestsFromWorkload(wl, fs, ft)
			plan, err := obf.Obfuscate(reqs)
			if err != nil {
				return nil, err
			}
			repU := uniform.EvaluatePlan(plan)
			repW := weighted.EvaluatePlan(plan)
			table.AddRow(fs, ft, obfuscate.BreachProbability(fs, ft), repU.MeanBreach, repW.MeanBreach, repU.MeanEntropy)
		}
	}
	table.AddNote("Definition 2 expectation: the uniform-adversary column matches 1/(fS*fT) exactly; the weighted adversary does somewhat better on hotspot destinations but stays far below 1.")
	return []*Table{table}, nil
}
