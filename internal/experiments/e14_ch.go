package experiments

import (
	"bytes"
	"time"

	"opaque/internal/ch"
	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// E14ContractionHierarchy measures the preprocessed-query trade the CH
// overlay makes: an offline contraction pass (seconds, persisted once) buys
// point queries whose search space no longer grows with the map. Two tables:
//
//   - preprocessing: contraction time, shortcut counts, hierarchy depth and
//     the persisted overlay size per graph size, plus the save/load
//     round-trip time — the cost side of the ledger;
//   - queries: uniform (map-scale) point queries per engine — workspace
//     Dijkstra, ALT with 8 landmarks, CH distance-only and CH with full
//     path unpacking — reporting wall time, queries/sec, settled nodes per
//     query and speedup over Dijkstra.
//
// Uniform pairs are deliberately the opposite regime from E13's local
// queries: long trips are where flat searches flood the map and where the
// hierarchy's upward search spaces pay off; BenchmarkCHQuery pins the same
// contrast on the 50k-node benchmark graph.
type E14ContractionHierarchy struct{}

// ID implements Runner.
func (E14ContractionHierarchy) ID() string { return "E14" }

// Description implements Runner.
func (E14ContractionHierarchy) Description() string {
	return "Contraction-hierarchy overlay: preprocessing cost and point-query speedup vs Dijkstra/ALT"
}

// Run implements Runner.
func (E14ContractionHierarchy) Run(scale Scale) ([]*Table, error) {
	sizes := []int{networkNodes(scale, 2500, 10000), networkNodes(scale, 10000, 50000)}
	iters := queries(scale, 300, 1000)

	prep := &Table{
		ID:      "E14",
		Title:   "CH preprocessing: contraction cost and overlay size",
		Columns: []string{"nodes", "arcs", "build ms", "shortcuts", "shortcut/arc", "max level", "overlay KiB", "save+load ms"},
	}
	qt := &Table{
		ID:      "E14q",
		Title:   "CH point queries vs flat engines (uniform pairs, " + itoa(iters) + " queries per engine)",
		Columns: []string{"nodes", "engine", "wall ms", "queries/sec", "settled/query", "speedup"},
	}

	// One workspace serves every flat-engine run; it grows to the largest
	// graph and is released once, so the loop does not pin one workspace per
	// size for the whole experiment.
	w := search.AcquireWorkspace(0)
	defer w.Release()

	for _, nodes := range sizes {
		netCfg := gen.DefaultNetworkConfig()
		netCfg.Kind = gen.TigerLike
		netCfg.Nodes = nodes
		netCfg.Seed = 1414
		g, err := gen.Generate(netCfg)
		if err != nil {
			return nil, err
		}
		wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{
			Kind:    gen.Uniform,
			Queries: queries(scale, 64, 256),
			Seed:    1415,
		})
		if err != nil {
			return nil, err
		}
		acc := storage.NewMemoryGraph(g)

		buildStart := time.Now()
		overlay, err := ch.Build(g)
		if err != nil {
			return nil, err
		}
		buildMS := float64(time.Since(buildStart).Milliseconds())

		var buf bytes.Buffer
		rtStart := time.Now()
		if err := ch.Write(overlay, &buf); err != nil {
			return nil, err
		}
		reloaded, err := ch.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return nil, err
		}
		rtMS := float64(time.Since(rtStart).Milliseconds())
		prep.AddRow(g.NumNodes(), g.NumArcs(), buildMS, overlay.NumShortcuts(),
			float64(overlay.NumShortcuts())/float64(overlay.NumOriginalArcs()),
			overlay.MaxLevel(), float64(buf.Len())/1024, rtMS)

		lm, err := search.PrepareLandmarks(acc, 8, search.LandmarksFarthest)
		if err != nil {
			return nil, err
		}
		eng := ch.NewEngine(reloaded, nil) // query the round-tripped overlay

		type engine struct {
			name string
			run  func(s, d roadnet.NodeID) (search.Stats, error)
		}
		engines := []engine{
			{"workspace dijkstra", func(s, d roadnet.NodeID) (search.Stats, error) {
				_, st, err := w.DijkstraDistance(acc, s, d)
				return st, err
			}},
			{"ALT (8 landmarks)", func(s, d roadnet.NodeID) (search.Stats, error) {
				_, st, err := w.AStarALT(acc, lm, s, d)
				return st, err
			}},
			{"CH distance", func(s, d roadnet.NodeID) (search.Stats, error) {
				_, st, err := eng.Distance(s, d)
				return st, err
			}},
			{"CH full path", func(s, d roadnet.NodeID) (search.Stats, error) {
				_, st, err := eng.Path(s, d)
				return st, err
			}},
		}

		baseWall := time.Duration(0)
		for ei, e := range engines {
			var settled int
			start := time.Now()
			for i := 0; i < iters; i++ {
				pr := wl[i%len(wl)]
				st, err := e.run(pr.Source, pr.Dest)
				if err != nil {
					return nil, err
				}
				settled += st.SettledNodes
			}
			wall := time.Since(start)
			if ei == 0 {
				baseWall = wall
			}
			speedup := 0.0
			if wall > 0 {
				speedup = baseWall.Seconds() / wall.Seconds()
			}
			qt.AddRow(g.NumNodes(), e.name, float64(wall.Milliseconds()),
				float64(iters)/wall.Seconds(), float64(settled)/float64(iters), speedup)
		}
	}

	prep.AddNote("Contraction is a one-off offline pass (persist with cmd/opaque-preprocess); save+load measures the OCH1 round-trip through memory. shortcut/arc is the arc-count inflation the hierarchy costs.")
	qt.AddNote("Uniform pairs span the whole map, the regime where Dijkstra's search ball covers a large fraction of the graph. Expectation: CH settles orders of magnitude fewer nodes and exceeds 5x Dijkstra throughput on the larger graph; ALT lands in between; path unpacking adds a modest constant over distance-only CH.")
	qt.AddNote("CH rows query the overlay after a Write/Read round-trip, so the table also witnesses persistence correctness.")
	return []*Table{prep, qt}, nil
}
