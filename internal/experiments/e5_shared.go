package experiments

import (
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
	"opaque/internal/protocol"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// E5SharedVsIndependent compares the paper's two obfuscated path query
// variants (Section III-C) as the number of concurrently pending users grows:
// total server cost, per-user breach probability, and the number of
// obfuscated queries sent. Shared obfuscation amortises true endpoints across
// users, so it needs fewer fakes for the same protection and the total cost
// grows sublinearly compared to independent obfuscation.
type E5SharedVsIndependent struct{}

// ID implements Runner.
func (E5SharedVsIndependent) ID() string { return "E5" }

// Description implements Runner.
func (E5SharedVsIndependent) Description() string {
	return "Independent vs shared obfuscated path queries as concurrent users grow (Section III-C)"
}

// Run implements Runner.
func (E5SharedVsIndependent) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = networkNodes(scale, 2500, 30000)
	netCfg.Seed = 505
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	srvCfg := server.DefaultConfig()
	srvCfg.Paged = true
	srvCfg.PageConfig = storage.DefaultConfig()
	srvCfg.BufferPages = 128
	srv, err := server.New(g, srvCfg)
	if err != nil {
		return nil, err
	}

	userCounts := []int{2, 4, 8, 16}
	if scale == Full {
		userCounts = append(userCounts, 32)
	}
	const fs, ft = 4, 4
	adversary := privacy.NewUniformAdversary(g)

	table := &Table{
		ID:    "E5",
		Title: "Independent vs shared obfuscation (fS=fT=4, tiger-like network, " + itoa(g.NumNodes()) + " nodes)",
		Columns: []string{
			"users k", "mode", "obf queries sent", "mean |S|", "mean |T|", "total settled nodes", "total page faults", "mean breach prob", "mean entropy bits",
		},
	}

	for _, k := range userCounts {
		wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Hotspot, Queries: k, Hotspots: 3, HotspotSpread: 0.05, Seed: uint64(600 + k)})
		if err != nil {
			return nil, err
		}
		reqs := requestsFromWorkload(wl, fs, ft)
		for _, mode := range []obfuscate.Mode{obfuscate.Independent, obfuscate.Shared} {
			cfg := obfuscate.Config{
				Mode:           mode,
				Cluster:        obfuscate.ClusterSpatialGreedy,
				Selector:       defaultBandSelector(g, uint64(700+k)),
				MaxClusterSize: 8,
				MaxClusterSpan: 0.3,
				Seed:           uint64(800 + k),
			}
			obf, err := obfuscate.New(g, cfg)
			if err != nil {
				return nil, err
			}
			plan, err := obf.Obfuscate(reqs)
			if err != nil {
				return nil, err
			}
			srv.ResetStats()
			var sumS, sumT int
			for _, q := range plan.Queries {
				sumS += len(q.Sources)
				sumT += len(q.Dests)
				if _, err := srv.Evaluate(protocol.ServerQuery{Sources: q.Sources, Dests: q.Dests}); err != nil {
					return nil, err
				}
			}
			stats, _ := srv.TotalStats()
			io := srv.IOStats()
			rep := adversary.EvaluatePlan(plan)
			table.AddRow(
				k, string(mode),
				len(plan.Queries),
				float64(sumS)/float64(len(plan.Queries)),
				float64(sumT)/float64(len(plan.Queries)),
				stats.SettledNodes,
				io.Faults,
				rep.MeanBreach,
				rep.MeanEntropy,
			)
		}
	}
	table.AddNote("Section III-C expectation: shared mode sends fewer obfuscated queries and settles fewer total nodes than independent mode at equal (or better) breach probability, with the gap widening as k grows.")
	return []*Table{table}, nil
}
