package experiments

import (
	"runtime"
	"time"

	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/server"
)

// E12BatchThroughput measures the server's batched evaluation engine against
// the one-query-at-a-time baseline on the workload the engine was built for:
// a rush-hour pattern where the same user population re-requests its trips
// over several batching windows, obfuscated in shared mode with sticky fakes.
// Because shared obfuscation deliberately reuses endpoints (and the sticky
// selector pins each user's fakes), consecutive windows present the server
// with heavily overlapping source sets — exactly what the SSMD tree cache
// converts from repeated Dijkstra runs into settled-tree reuse. The table
// reports wall time, throughput, speedup, and the tree cache hit ratio as
// published in the server's metrics registry.
type E12BatchThroughput struct{}

// ID implements Runner.
func (E12BatchThroughput) ID() string { return "E12" }

// Description implements Runner.
func (E12BatchThroughput) Description() string {
	return "Batched evaluation engine + SSMD tree cache vs sequential evaluation on a shared-mode rush-hour workload"
}

// Run implements Runner.
func (E12BatchThroughput) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = networkNodes(scale, 2500, 30000)
	netCfg.Seed = 1212
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}

	users := queries(scale, 24, 96)
	rounds := queries(scale, 4, 8)
	const fs, ft = 4, 4
	wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{
		Kind: gen.Hotspot, Queries: users, Hotspots: 3, HotspotSpread: 0.05, Seed: 1213,
	})
	if err != nil {
		return nil, err
	}
	reqs := requestsFromWorkload(wl, fs, ft)

	obf, err := obfuscate.New(g, obfuscate.Config{
		Mode:           obfuscate.Shared,
		Cluster:        obfuscate.ClusterSpatialGreedy,
		Selector:       obfuscate.NewStickySelector(defaultBandSelector(g, 1214), 0),
		MaxClusterSize: 8,
		MaxClusterSpan: 0.3,
		Seed:           1215,
	})
	if err != nil {
		return nil, err
	}

	// Pre-obfuscate every window so the timed section contains only server
	// work. One window = one obfuscator flush = one batch.
	windows := make([][]protocol.ServerQuery, rounds)
	totalQueries := 0
	for r := range windows {
		plan, err := obf.Obfuscate(reqs)
		if err != nil {
			return nil, err
		}
		qs := make([]protocol.ServerQuery, len(plan.Queries))
		for i, q := range plan.Queries {
			qs[i] = protocol.ServerQuery{Sources: q.Sources, Dests: q.Dests}
		}
		windows[r] = qs
		totalQueries += len(qs)
	}

	newServer := func(batched bool) (*server.Server, error) {
		cfg := server.DefaultConfig()
		cfg.KeepLog = false // isolate evaluation cost
		if batched {
			cfg.BatchWorkers = runtime.GOMAXPROCS(0)
			cfg.TreeCache = 512
			cfg.MaxConcurrentSearches = 2 * runtime.GOMAXPROCS(0)
		}
		return server.New(g, cfg)
	}

	seq, err := newServer(false)
	if err != nil {
		return nil, err
	}
	bat, err := newServer(true)
	if err != nil {
		return nil, err
	}

	seqStart := time.Now()
	for _, qs := range windows {
		for _, q := range qs {
			if _, err := seq.Evaluate(q); err != nil {
				return nil, err
			}
		}
	}
	seqWall := time.Since(seqStart)

	batStart := time.Now()
	for _, qs := range windows {
		for _, r := range bat.EvaluateBatch(qs) {
			if r.Err != nil {
				return nil, r.Err
			}
		}
	}
	batWall := time.Since(batStart)

	qps := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(totalQueries) / d.Seconds()
	}
	speedup := 0.0
	if batWall > 0 {
		speedup = seqWall.Seconds() / batWall.Seconds()
	}
	hitRatio := bat.Metrics().Gauge("tree_cache_hit_ratio")

	table := &Table{
		ID: "E12",
		Title: "Batched evaluation vs sequential (shared mode, sticky fakes, " +
			itoa(users) + " users x " + itoa(rounds) + " windows, " + itoa(g.NumNodes()) + " nodes)",
		Columns: []string{"engine", "obf queries", "wall ms", "queries/sec", "speedup", "tree cache hit ratio"},
	}
	table.AddRow("sequential Evaluate", totalQueries, float64(seqWall.Milliseconds()), qps(seqWall), 1.0, "n/a")
	table.AddRow("EvaluateBatch + tree cache", totalQueries, float64(batWall.Milliseconds()), qps(batWall), speedup, hitRatio)
	table.AddNote("Expectation: the batch engine wins on two axes — worker-pool parallelism across the queries of a window, and SSMD tree reuse across windows (hit ratio approaches (rounds-1)/rounds as sticky shared endpoints repeat).")
	table.AddNote("Cache hit ratio is read from the server metrics registry gauge tree_cache_hit_ratio; cmd/opaque-bench therefore reports it directly from the same instrumentation the server exports.")
	return []*Table{table}, nil
}
