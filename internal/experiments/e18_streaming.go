package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"opaque/internal/costmodel"
	"opaque/internal/gen"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
	"opaque/internal/traffic"
)

// E18Streaming measures the streaming traffic ingestion pipeline end to end:
// a sustained event stream over a hot arc pool is pushed through the
// coalescer into the serving stack while point queries — on the live metric
// and on a prewarmed time-of-day profile layer — hammer the server, at a
// sweep of target event rates. Per rate the table reports
//
//   - the achieved event throughput and how far coalescing collapsed the
//     stream (events per applied arc change);
//   - how the re-customization work scaled: applied batches and pipelined
//     refresh runs (folding means runs <= batches, and both grow with
//     batches, not raw events);
//   - the p99 latency of live-metric and profile-layer queries under churn;
//   - the longest contiguous stretch the overlay spent stale — the
//     stale-query window, bounded near one incremental re-customization
//     latency because each refresh starts from the freshest snapshot.
//
// Every applied batch is verified on the coalescer goroutine, before the next
// batch can land: one sampled pair of the post-batch snapshot is checked
// against reference Dijkstra, so a broken coalesce/apply path cannot survive
// into the table. Profile-layer misses are asserted to stay flat across the
// whole run — churn must never touch the precustomized layers.
type E18Streaming struct{}

// ID implements Runner.
func (E18Streaming) ID() string { return "E18" }

// Description implements Runner.
func (E18Streaming) Description() string {
	return "Streaming ingestion: coalesced batches + pipelined re-customization under query load"
}

// Run implements Runner.
func (E18Streaming) Run(scale Scale) ([]*Table, error) {
	nodes := networkNodes(scale, 6000, 50000)
	rates := []int{100, 400, 1600}
	perRate := 1 * time.Second
	if scale == Small {
		rates = []int{200, 800}
		perRate = 300 * time.Millisecond
	}

	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = nodes
	netCfg.Seed = 1818
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	cfg := server.DefaultConfig()
	cfg.Strategy = server.StrategyHybrid
	cfg.BuildCH = true
	cfg.PartitionCells = 32
	cfg.Profiles = costmodel.TimeOfDayProfiles()
	cfg.PrewarmProfiles = true
	srv, err := server.New(g, cfg)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "E18",
		Title: "Streaming ingestion under query load (" + itoa(nodes) + " nodes, hot pool, prewarmed profiles)",
		Columns: []string{"target ev/s", "achieved ev/s", "events", "batches", "coalesce ratio",
			"refresh runs", "p99 live ms", "p99 profile ms", "max stale ms"},
	}

	pool, orig := hotArcPool(g, 64)
	rng := rand.New(rand.NewSource(1819))
	for _, rate := range rates {
		row, err := runStreamingRate(srv, g, pool, orig, rng, rate, perRate)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(rate, row.achieved, row.events, row.batches, row.ratio,
			row.refreshRuns, row.p99Live, row.p99Profile, row.maxStaleMS)
	}

	tbl.AddNote("Pipeline: traffic.Ingestor coalescing last-write-wins over a %d-arc hot pool (max batch %d, max delay %v), applied through Server.ApplyWeights — one snapshot swap per batch — with the pipelined refresh worker folding batches into single RecustomizeNow runs.", len(pool), streamMaxBatch, streamMaxDelay)
	tbl.AddNote("Every applied batch was verified against reference Dijkstra on the post-batch snapshot before the next batch could land; profile queries ran on the prewarmed am-peak layer with zero customization work (layer misses stayed flat across the sweep).")
	tbl.AddNote("Acceptance bar: >= 100 events/sec coalesced at full scale; refresh runs track batches (not raw events); the stale window stays near one incremental re-customization latency.")
	return []*Table{tbl}, nil
}

// Streaming pipeline knobs for E18: a longer-than-default flush delay keeps
// the per-batch reference verification (a full Dijkstra on the coalescer
// goroutine) from dominating the pipeline at full scale.
const (
	streamMaxBatch = 256
	streamMaxDelay = 50 * time.Millisecond
)

// streamRow is one rate's measurements.
type streamRow struct {
	achieved    float64
	events      int64
	batches     int64
	ratio       float64
	refreshRuns int64
	p99Live     float64
	p99Profile  float64
	maxStaleMS  float64
}

// runStreamingRate drives one paced event stream against srv with concurrent
// live and profile query load, verifying every applied batch.
func runStreamingRate(srv *server.Server, g *roadnet.Graph, pool [][2]roadnet.NodeID, orig map[[2]roadnet.NodeID]float64, rng *rand.Rand, rate int, dur time.Duration) (streamRow, error) {
	var row streamRow

	// Per-batch verification: one sampled pair of the snapshot the batch
	// produced, against reference Dijkstra. Runs on the coalescer goroutine —
	// the snapshot cannot move under it — so errors are collected, not
	// returned, and checked after Close.
	var verifyMu sync.Mutex
	var verifyErr error
	vrng := rand.New(rand.NewSource(int64(1820 + rate)))
	onApplied := func(changes []roadnet.ArcWeightChange, gen uint64) {
		cur := srv.Graph()
		for _, c := range changes {
			if got, ok := cur.ArcCost(c.From, c.To); !ok || got != c.NewCost {
				verifyMu.Lock()
				if verifyErr == nil {
					verifyErr = fmt.Errorf("experiments: E18 gen %d: arc (%d,%d) applied cost %v, snapshot has %v", gen, c.From, c.To, c.NewCost, got)
				}
				verifyMu.Unlock()
				return
			}
		}
		s := roadnet.NodeID(vrng.Intn(g.NumNodes()))
		d := roadnet.NodeID(vrng.Intn(g.NumNodes()))
		want, _, err := search.ReferenceDijkstra(storage.NewMemoryGraph(cur), s, d)
		if err != nil {
			verifyMu.Lock()
			if verifyErr == nil {
				verifyErr = err
			}
			verifyMu.Unlock()
			return
		}
		wantDist := want.Cost
		if len(want.Nodes) == 0 && s != d {
			wantDist = math.Inf(1)
		}
		reply, err := srv.Evaluate(protocol.ServerQuery{Sources: []roadnet.NodeID{s}, Dests: []roadnet.NodeID{d}})
		if err == nil {
			got := math.Inf(1)
			if len(reply.Paths) > 0 && (len(reply.Paths[0].Nodes) > 0 || s == d) {
				got = reply.Paths[0].Cost
			}
			if got != wantDist && math.Abs(got-wantDist) > 1e-9*(1+math.Abs(wantDist)) {
				err = fmt.Errorf("experiments: E18 gen %d: pair (%d,%d) served %v, reference says %v", gen, s, d, got, wantDist)
			}
		}
		if err != nil {
			verifyMu.Lock()
			if verifyErr == nil {
				verifyErr = err
			}
			verifyMu.Unlock()
		}
	}

	in, err := srv.NewIngestor(traffic.Config{
		MaxBatch:  streamMaxBatch,
		MaxDelay:  streamMaxDelay,
		OnApplied: onApplied,
	})
	if err != nil {
		return row, err
	}

	missesBefore := srv.Metrics().Counter("profile_layer_misses")

	// Query load: one goroutine alternating live-metric and profile-layer
	// point queries, collecting per-kind latencies.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var liveLat, profLat []float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		qrng := rand.New(rand.NewSource(int64(1821 + rate)))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := protocol.ServerQuery{
				Sources: []roadnet.NodeID{roadnet.NodeID(qrng.Intn(g.NumNodes()))},
				Dests:   []roadnet.NodeID{roadnet.NodeID(qrng.Intn(g.NumNodes()))},
			}
			profile := i%2 == 1
			if profile {
				q.Profile = costmodel.ProfileAMPeak
			}
			qs := time.Now()
			_, qerr := srv.Evaluate(q)
			ms := float64(time.Since(qs).Microseconds()) / 1000
			if qerr != nil {
				continue
			}
			if profile {
				profLat = append(profLat, ms)
			} else {
				liveLat = append(liveLat, ms)
			}
		}
	}()

	// Stale-window monitor.
	var staleMu sync.Mutex
	var worstStale time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		var since time.Time
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if srv.OverlayFresh() {
					since = time.Time{}
					continue
				}
				if since.IsZero() {
					since = time.Now()
				} else if d := time.Since(since); d > worstStale {
					staleMu.Lock()
					worstStale = d
					staleMu.Unlock()
				}
			}
		}
	}()

	// The paced stream itself. Events follow an absolute schedule (event i
	// due at start + i*interval): when a sleep overshoots — coarse timer
	// granularity at high rates — the loop catches up with a burst instead of
	// silently undershooting the target rate.
	interval := time.Second / time.Duration(rate)
	total := int(dur / interval)
	start := time.Now()
	for i := 0; i < total; i++ {
		if wait := start.Add(time.Duration(i) * interval).Sub(time.Now()); wait > 0 {
			time.Sleep(wait)
		}
		key := pool[rng.Intn(len(pool))]
		cost := 1 + rng.Float64()*30
		if rng.Intn(6) == 0 {
			cost = orig[key]
		}
		if err := in.Ingest(roadnet.ArcWeightChange{From: key[0], To: key[1], NewCost: cost}); err != nil {
			_ = in.Close()
			close(stop)
			wg.Wait()
			return row, err
		}
	}
	// The streaming window ends here; Close (drain + final flush + final
	// refresh) is deliberately outside the throughput measurement.
	wall := time.Since(start)
	if err := in.Close(); err != nil {
		close(stop)
		wg.Wait()
		return row, err
	}
	close(stop)
	wg.Wait()

	verifyMu.Lock()
	vErr := verifyErr
	verifyMu.Unlock()
	if vErr != nil {
		return row, vErr
	}
	if !srv.OverlayFresh() {
		return row, fmt.Errorf("experiments: E18 rate %d: overlay still stale after Close", rate)
	}
	if missesAfter := srv.Metrics().Counter("profile_layer_misses"); missesAfter != missesBefore {
		return row, fmt.Errorf("experiments: E18 rate %d: profile layer misses grew %d -> %d under churn; the query path must stay precustomized", rate, missesBefore, missesAfter)
	}

	st := in.Stats()
	row.achieved = float64(st.Events) / wall.Seconds()
	row.events = st.Events
	row.batches = st.Batches
	row.ratio = st.CoalesceRatio()
	row.refreshRuns = st.RefreshRuns
	row.p99Live = percentileMS(liveLat, 0.99)
	row.p99Profile = percentileMS(profLat, 0.99)
	staleMu.Lock()
	row.maxStaleMS = float64(worstStale.Microseconds()) / 1000
	staleMu.Unlock()
	return row, nil
}

// hotArcPool collects up to max distinct arcs, spread across the graph,
// with their original costs for revert events.
func hotArcPool(g *roadnet.Graph, max int) ([][2]roadnet.NodeID, map[[2]roadnet.NodeID]float64) {
	pool := make([][2]roadnet.NodeID, 0, max)
	orig := make(map[[2]roadnet.NodeID]float64, max)
	stride := g.NumNodes()/max + 1
	for v := 0; v < g.NumNodes() && len(pool) < max; v += stride {
		for _, a := range g.Arcs(roadnet.NodeID(v)) {
			key := [2]roadnet.NodeID{roadnet.NodeID(v), a.To}
			if _, seen := orig[key]; seen {
				continue
			}
			orig[key] = a.Cost
			pool = append(pool, key)
			break
		}
	}
	return pool, orig
}

// percentileMS returns the p-th percentile of the sample, 0 when empty.
func percentileMS(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(p * float64(len(s)-1))
	return s[idx]
}
