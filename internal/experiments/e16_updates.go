package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"opaque/internal/ch"
	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

// E16LiveUpdates measures what a live weight update costs at every layer of
// the serving stack, against the only alternative a frozen-graph design has
// — rebuilding the overlay from scratch:
//
//   - the copy-on-write weight apply (storage.MutableGraph.UpdateWeights,
//     including the incremental content-checksum re-derivation), per update
//     batch size;
//   - the CH re-customization (Overlay.Recustomize: bottom-up triangle pass
//     over the frozen shortcut structure), which is what restores overlay
//     serving after an update;
//   - the two full rebuild baselines: the witness-pruned contraction
//     (ch.Build — what "BuildCH" costs on an immutable deployment) and the
//     metric-independent contraction (ch.BuildCustomizable — what an
//     update-capable overlay costs to rebuild).
//
// The speedup column is re-customization against the witness rebuild — the
// acceptance bar is ≥ 10x on the full-scale (50k-node) graph; measurements
// land well above it (and higher still against the customizable rebuild).
// Every re-customized overlay is spot-checked against reference Dijkstra on
// the updated graph before its row is reported, so the table cannot quietly
// measure a broken refresh.
type E16LiveUpdates struct{}

// ID implements Runner.
func (E16LiveUpdates) ID() string { return "E16" }

// Description implements Runner.
func (E16LiveUpdates) Description() string {
	return "Live weight updates: copy-on-write apply + CH re-customization vs full rebuild"
}

// Run implements Runner.
func (E16LiveUpdates) Run(scale Scale) ([]*Table, error) {
	nodes := networkNodes(scale, 6000, 50000)
	batches := []int{1, 16, 256, 4096}
	checks := queries(scale, 20, 50)

	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = nodes
	netCfg.Seed = 1616
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}

	witnessStart := time.Now()
	if _, err := ch.Build(g); err != nil {
		return nil, err
	}
	witnessMS := float64(time.Since(witnessStart).Microseconds()) / 1000

	customStart := time.Now()
	overlay, err := ch.BuildCustomizable(g)
	if err != nil {
		return nil, err
	}
	customMS := float64(time.Since(customStart).Microseconds()) / 1000

	tbl := &Table{
		ID:    "E16",
		Title: "Live weight updates: apply + re-customize vs rebuild (" + itoa(nodes) + " nodes)",
		Columns: []string{"changed arcs", "apply ms", "recustomize ms",
			"rebuild (witness) ms", "rebuild (customizable) ms", "speedup vs witness rebuild"},
	}

	mg := storage.NewMutableGraph(g)
	rng := rand.New(rand.NewSource(1617))
	for _, k := range batches {
		changes := make([]roadnet.ArcWeightChange, 0, k)
		base := storage.SnapshotOf(mg).Graph()
		for len(changes) < k {
			v := roadnet.NodeID(rng.Intn(g.NumNodes()))
			arcs := base.Arcs(v)
			if len(arcs) == 0 {
				continue
			}
			a := arcs[rng.Intn(len(arcs))]
			changes = append(changes, roadnet.ArcWeightChange{From: v, To: a.To, NewCost: a.Cost * (0.5 + rng.Float64())})
		}
		applyStart := time.Now()
		if _, err := mg.UpdateWeights(changes); err != nil {
			return nil, err
		}
		applyMS := float64(time.Since(applyStart).Microseconds()) / 1000

		cur := storage.SnapshotOf(mg).Graph()
		recustStart := time.Now()
		fresh, err := overlay.Recustomize(cur)
		if err != nil {
			return nil, err
		}
		recustMS := float64(time.Since(recustStart).Microseconds()) / 1000

		if err := verifyOverlay(fresh, cur, checks, rng); err != nil {
			return nil, err
		}
		overlay = fresh
		tbl.AddRow(k, applyMS, recustMS, witnessMS, customMS, witnessMS/recustMS)
	}

	tbl.AddNote("apply = storage.MutableGraph.UpdateWeights: copy-on-write arc array + incremental content checksum; queries in flight keep their pinned snapshot.")
	tbl.AddNote("recustomize = ch.Overlay.Recustomize: bottom-up triangle relaxation over the frozen shortcut structure (contraction order and topology reused). Each refreshed overlay was verified against reference Dijkstra on the updated graph (%d sampled pairs per row).", checks)
	tbl.AddNote("Acceptance bar: recustomize >= 10x faster than the witness rebuild at full scale. The customizable rebuild column is the honest like-for-like rebuild of an update-capable overlay; the speedup against it is larger still.")
	return []*Table{tbl}, nil
}

// verifyOverlay cross-checks n random point queries of the overlay against
// reference Dijkstra on g.
func verifyOverlay(o *ch.Overlay, g *roadnet.Graph, n int, rng *rand.Rand) error {
	acc := storage.NewMemoryGraph(g)
	eng := ch.NewEngine(o, nil)
	for i := 0; i < n; i++ {
		s := roadnet.NodeID(rng.Intn(g.NumNodes()))
		d := roadnet.NodeID(rng.Intn(g.NumNodes()))
		want, _, err := search.ReferenceDijkstra(acc, s, d)
		if err != nil {
			return err
		}
		wantDist := want.Cost
		if len(want.Nodes) == 0 && s != d {
			wantDist = math.Inf(1)
		}
		got, _, err := eng.Distance(s, d)
		if err != nil {
			return err
		}
		if got != wantDist && math.Abs(got-wantDist) > 1e-9*(1+math.Abs(wantDist)) {
			return fmt.Errorf("experiments: E16 verification failed: pair (%d,%d) overlay says %v, reference says %v", s, d, got, wantDist)
		}
	}
	return nil
}
