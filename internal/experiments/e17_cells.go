package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"opaque/internal/ch"
	"opaque/internal/gen"
	"opaque/internal/roadnet"
)

// E17CellUpdates measures what the partition buys over E16's flat refresh:
// with the overlay contracted cell by cell (boundary nodes last), a weight
// update re-customizes only the cells its changed arcs live in plus the
// boundary top layer (ch.Overlay.RecustomizeIncremental), instead of
// re-running the triangle pass over the whole arena. The experiment sweeps
// the number of touched cells — one interior arc changed per cell, so the
// touched-cell count is exact — and reports the cell-limited refresh against
// two baselines on identical changes: the full re-customization
// (ch.Overlay.Recustomize, E16's refresh) and the witness rebuild
// (ch.Build, the frozen-graph alternative).
//
// The speedup column is full re-customization against the cell-limited
// refresh. The acceptance bar is ≥ 5x for a single touched cell on the
// full-scale (50k-node) graph; the gap narrows as more cells are touched
// and closes near all-cells-touched, where the incremental pass degenerates
// to the full one plus the diff scan. Every incremental overlay is verified
// against reference Dijkstra on the updated graph before its row is
// reported, and a row fails outright if the refresh touched more cells than
// its changes occupy.
type E17CellUpdates struct{}

// ID implements Runner.
func (E17CellUpdates) ID() string { return "E17" }

// Description implements Runner.
func (E17CellUpdates) Description() string {
	return "Partitioned overlay: cell-limited re-customization vs full pass vs witness rebuild"
}

// e17Cells is the partition size E17 contracts with: small enough that every
// cell has interior arcs at both scales, large enough that a one-cell
// refresh skips a meaningful share of the triangle work (31/32 of it).
const e17Cells = 32

// Run implements Runner.
func (E17CellUpdates) Run(scale Scale) ([]*Table, error) {
	nodes := networkNodes(scale, 6000, 50000)
	touched := []int{1, 2, 4, 16}
	checks := queries(scale, 20, 50)

	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = nodes
	netCfg.Seed = 1717
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}

	witnessStart := time.Now()
	if _, err := ch.Build(g); err != nil {
		return nil, err
	}
	witnessMS := float64(time.Since(witnessStart).Microseconds()) / 1000

	part, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: e17Cells, Seed: 1718})
	if err != nil {
		return nil, err
	}
	overlay, err := ch.BuildCustomizablePartitioned(g, part)
	if err != nil {
		return nil, err
	}

	// One interior arc per cell (both endpoints inside, neither boundary):
	// changing it dirties exactly that cell's weight layer.
	cellArc := make(map[int]roadnet.ArcWeightChange, e17Cells)
	for v := 0; v < g.NumNodes(); v++ {
		cv, bv := overlay.CellOfNode(roadnet.NodeID(v))
		if bv {
			continue
		}
		if _, ok := cellArc[cv]; ok {
			continue
		}
		for _, a := range g.Arcs(roadnet.NodeID(v)) {
			if a.To == roadnet.NodeID(v) {
				continue
			}
			if ct, bt := overlay.CellOfNode(a.To); !bt && ct == cv {
				cellArc[cv] = roadnet.ArcWeightChange{From: roadnet.NodeID(v), To: a.To}
				break
			}
		}
	}
	var cellsWithArcs []int
	for c := 0; c < e17Cells; c++ {
		if _, ok := cellArc[c]; ok {
			cellsWithArcs = append(cellsWithArcs, c)
		}
	}
	if len(cellsWithArcs) < touched[len(touched)-1] {
		return nil, fmt.Errorf("experiments: E17: only %d of %d cells have interior arcs", len(cellsWithArcs), e17Cells)
	}

	tbl := &Table{
		ID: "E17",
		Title: "Cell-limited re-customization: touched cells vs full pass vs rebuild (" +
			itoa(nodes) + " nodes, " + itoa(e17Cells) + " cells)",
		Columns: []string{"touched cells", "cell-limited ms", "full recustomize ms",
			"rebuild (witness) ms", "speedup vs full recustomize"},
	}

	rng := rand.New(rand.NewSource(1719))
	for _, k := range touched {
		changes := make([]roadnet.ArcWeightChange, 0, k)
		for _, c := range cellsWithArcs[:k] {
			arc := cellArc[c]
			cur, ok := g.ArcCost(arc.From, arc.To)
			if !ok {
				return nil, fmt.Errorf("experiments: E17: arc %d→%d vanished", arc.From, arc.To)
			}
			// Always a real change: scale away from the current cost.
			arc.NewCost = cur*(1.25+rng.Float64()) + 1
			changes = append(changes, arc)
		}
		g2, err := g.WithUpdatedWeights(changes)
		if err != nil {
			return nil, err
		}

		incStart := time.Now()
		fresh, stats, err := overlay.RecustomizeIncremental(g2)
		if err != nil {
			return nil, err
		}
		incMS := float64(time.Since(incStart).Microseconds()) / 1000
		if stats.Full || len(stats.Recustomized) != k {
			return nil, fmt.Errorf("experiments: E17: %d interior-arc changes re-customized %d cells (full=%v)",
				k, len(stats.Recustomized), stats.Full)
		}

		fullStart := time.Now()
		if _, err := overlay.Recustomize(g2); err != nil {
			return nil, err
		}
		fullMS := float64(time.Since(fullStart).Microseconds()) / 1000

		if err := verifyOverlay(fresh, g2, checks, rng); err != nil {
			return nil, err
		}
		tbl.AddRow(k, incMS, fullMS, witnessMS, fullMS/incMS)
		overlay, g = fresh, g2
	}

	tbl.AddNote("cell-limited = ch.Overlay.RecustomizeIncremental: diff against the last-customized weights, re-run the triangle pass of the touched cells only (one goroutine per cell), fold their boundary exports and refresh the top layer. full = ch.Overlay.Recustomize on identical changes.")
	tbl.AddNote("One changed arc lies strictly inside each touched cell, so the touched-cell count is exact; the run fails if the refresh touches any other cell. Each incremental overlay was verified against reference Dijkstra on the updated graph (%d sampled pairs per row).", checks)
	tbl.AddNote("Acceptance bar: cell-limited >= 5x faster than the full re-customization for a single touched cell at full scale; the advantage shrinks as touched cells approach the partition size.")
	return []*Table{tbl}, nil
}
