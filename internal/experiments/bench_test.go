package experiments

import "testing"

// benchRunner wraps one experiment runner as a testing.B benchmark at small
// scale, so `go test -bench` tracks the same code paths cmd/opaque-bench
// times (the BENCH_<date>.json perf record carries the full-scale numbers).
func benchRunner(b *testing.B, r Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(Small); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16 times the flat live-update pipeline: copy-on-write apply plus
// full CH re-customization against the rebuild baselines.
func BenchmarkE16(b *testing.B) { benchRunner(b, E16LiveUpdates{}) }

// BenchmarkE17 times the partitioned live-update pipeline: cell-limited
// re-customization against the full pass and the witness rebuild.
func BenchmarkE17(b *testing.B) { benchRunner(b, E17CellUpdates{}) }

// BenchmarkE18 times the streaming ingestion pipeline: coalesced update
// batches plus pipelined re-customization under concurrent query load.
func BenchmarkE18(b *testing.B) { benchRunner(b, E18Streaming{}) }

// BenchmarkE19 times the fleet serving tier: scatter/gather over two
// in-process shards against the single-server baseline, with every merged
// table verified against the reference.
func BenchmarkE19(b *testing.B) { benchRunner(b, E19Fleet{}) }

// BenchmarkE20 times the availability-under-faults battery: the fleet
// workload with one shard crashed, restarted and blackholed in turn, every
// surviving reply verified against the reference.
func BenchmarkE20(b *testing.B) { benchRunner(b, E20Faults{}) }
