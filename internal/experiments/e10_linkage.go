package experiments

import (
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
)

// E10Linkage measures the repeated-query linkage attack and the sticky-fake
// defence. The paper notes (Section II) that the server accumulates every
// query it receives; when the same user repeats the same trip and the
// obfuscator draws fresh fakes each time, intersecting the observed endpoint
// sets across observations isolates the true endpoints. Reusing the same
// fakes per endpoint (obfuscate.StickySelector) keeps the intersection
// constant, so repeated queries add nothing to the first observation.
type E10Linkage struct{}

// ID implements Runner.
func (E10Linkage) ID() string { return "E10" }

// Description implements Runner.
func (E10Linkage) Description() string {
	return "Repeated-query linkage attack: fresh fakes per request vs sticky fakes (extension experiment)"
}

// Run implements Runner.
func (E10Linkage) Run(scale Scale) ([]*Table, error) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = networkNodes(scale, 2500, 20000)
	netCfg.Seed = 1001
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}
	users := queries(scale, 20, 100)
	wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Hotspot, Queries: users, Hotspots: 4, HotspotSpread: 0.05, Seed: 1002})
	if err != nil {
		return nil, err
	}
	const fs, ft = 4, 4
	repeats := []int{1, 2, 4, 8}

	table := &Table{
		ID:    "E10",
		Title: "Repeated-query linkage (fS=fT=4, " + itoa(users) + " users)",
		Columns: []string{
			"observations", "selector", "mean candidate sources left", "mean candidate dests left", "source pinned rate", "dest pinned rate",
		},
	}

	type variant struct {
		name   string
		sticky bool
	}
	for _, v := range []variant{{"fresh", false}, {"sticky", true}} {
		// One selector per variant; the sticky one persists across a user's
		// repeated requests (that persistence is exactly the defence).
		var persistentSticky *obfuscate.StickySelector
		if v.sticky {
			persistentSticky = obfuscate.NewStickySelector(defaultBandSelector(g, 1003), 0)
		}
		for _, reps := range repeats {
			var candSources, candDests []float64
			srcPinned, dstPinned := 0, 0
			for ui, pair := range wl {
				truth := obfuscate.Request{User: obfuscate.UserID(userName(ui)), Source: pair.Source, Dest: pair.Dest, FS: fs, FT: ft}
				var observed []obfuscate.ObfuscatedQuery
				for rep := 0; rep < reps; rep++ {
					var sel obfuscate.EndpointSelector
					if v.sticky {
						sel = persistentSticky
					} else {
						// A fresh selector per observation models fresh fakes.
						sel = defaultBandSelector(g, uint64(2000+ui*31+rep))
					}
					obf, err := obfuscate.New(g, obfuscate.Config{
						Mode:     obfuscate.Independent,
						Cluster:  obfuscate.ClusterNone,
						Selector: sel,
						Seed:     uint64(3000 + ui*17 + rep),
					})
					if err != nil {
						return nil, err
					}
					plan, err := obf.Obfuscate([]obfuscate.Request{truth})
					if err != nil {
						return nil, err
					}
					observed = append(observed, plan.Queries[0])
				}
				rep := privacy.AnalyzeLinkage(observed, truth)
				candSources = append(candSources, float64(len(rep.PersistentSources)))
				candDests = append(candDests, float64(len(rep.PersistentDests)))
				if rep.SourceIdentified {
					srcPinned++
				}
				if rep.DestIdentified {
					dstPinned++
				}
			}
			table.AddRow(
				reps, v.name,
				meanFloat(candSources), meanFloat(candDests),
				float64(srcPinned)/float64(len(wl)), float64(dstPinned)/float64(len(wl)),
			)
		}
	}
	table.AddNote("Expectation: with fresh fakes the candidate sets shrink towards 1 and the pinned rate rises quickly with the number of observations; with sticky fakes both stay at their single-observation values (fS and fT).")
	return []*Table{table}, nil
}
