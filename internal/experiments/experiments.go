// Package experiments contains one runner per experiment of the reproduction
// plan (DESIGN.md §5). The OPAQUE paper is a four-page short paper whose
// figures are architectural, so each experiment operationalises one of the
// paper's quantitative claims (breach probability, the Lemma 1 cost model,
// the SSMD sharing argument, the independent-vs-shared trade-off, the
// Section II comparison with prior techniques, and the collusion-resistance
// claim) as a measured table. cmd/opaque-bench prints the tables;
// bench_test.go wraps each runner in a testing.B benchmark; EXPERIMENTS.md
// records the expected versus measured shapes.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a formatted experiment result: a title, column headers, rows of
// cells and free-form notes explaining how to read it.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row of cells, formatting each value with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows), quoting
// nothing because cells never contain commas.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Scale trades experiment fidelity for runtime: Small keeps unit-test and
// benchmark runtimes low, Full uses paper-scale parameters.
type Scale string

// Scale levels.
const (
	Small Scale = "small"
	Full  Scale = "full"
)

// Runner is the common face of every experiment.
type Runner interface {
	ID() string
	Description() string
	Run(scale Scale) ([]*Table, error)
}

// All returns every experiment runner in report order.
func All() []Runner {
	return []Runner{
		E1Baselines{},
		E2Breach{},
		E3CostModel{},
		E4SSMD{},
		E5SharedVsIndependent{},
		E6ObfuscatorOverhead{},
		E7Scaling{},
		E8Strategies{},
		E9Collusion{},
		E10Linkage{},
		E11ServerLog{},
		E12BatchThroughput{},
		E13WorkspaceHotPath{},
		E14ContractionHierarchy{},
		E15ManyToMany{},
		E16LiveUpdates{},
		E17CellUpdates{},
		E18Streaming{},
		E19Fleet{},
		E20Faults{},
	}
}

// ByID returns the runner with the given experiment ID (case-insensitive), or
// an error listing valid IDs.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if strings.EqualFold(r.ID(), id) {
			return r, nil
		}
	}
	var ids []string
	for _, r := range All() {
		ids = append(ids, r.ID())
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (valid: %s)", id, strings.Join(ids, ", "))
}

// RunAll executes every experiment at the given scale, writing each table to
// w as it completes, and returns the tables.
func RunAll(w io.Writer, scale Scale) ([]*Table, error) {
	var out []*Table
	for _, r := range All() {
		tables, err := r.Run(scale)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", r.ID(), err)
		}
		for _, t := range tables {
			if w != nil {
				if err := t.Render(w); err != nil {
					return out, err
				}
			}
			out = append(out, t)
		}
	}
	return out, nil
}
