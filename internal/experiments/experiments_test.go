package experiments

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Columns: []string{"a", "bee"}}
	tb.AddRow(1, 2.34567)
	tb.AddRow("x", "y")
	tb.AddNote("a note %d", 7)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "2.346") || !strings.Contains(out, "a note 7") {
		t.Errorf("rendered table missing content:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bee\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "x,y") {
		t.Errorf("CSV missing row: %q", csv)
	}
}

func TestAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("expected 20 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if r.ID() == "" || r.Description() == "" {
			t.Errorf("experiment %T missing metadata", r)
		}
		if seen[r.ID()] {
			t.Errorf("duplicate experiment id %s", r.ID())
		}
		seen[r.ID()] = true
	}
	if _, err := ByID("e5"); err != nil {
		t.Errorf("ByID should be case-insensitive: %v", err)
	}
	if _, err := ByID("E42"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

// The individual experiment runners are exercised end-to-end (at Small scale)
// by the benchmark harness in the repository root; here we run the two
// cheapest ones to keep unit-test time low while still covering the runner
// plumbing and the expectations encoded in their notes.

func TestE2BreachRuns(t *testing.T) {
	tables, err := E2Breach{}.Run(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	// Column 2 (nominal) must equal column 3 (measured uniform) on every row.
	for _, row := range tables[0].Rows {
		if row[2] != row[3] {
			t.Errorf("nominal %s != measured uniform %s", row[2], row[3])
		}
	}
}

func TestE4SSMDRuns(t *testing.T) {
	tables, err := E4SSMD{}.Run(Small)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatalf("unexpected tables: %+v", tables)
	}
	if len(tables[0].Columns) != 6 {
		t.Errorf("E4 columns = %d, want 6", len(tables[0].Columns))
	}
}

func TestHelperFunctions(t *testing.T) {
	if got := itoa(0); got != "0" {
		t.Errorf("itoa(0) = %q", got)
	}
	if got := itoa(-42); got != "-42" {
		t.Errorf("itoa(-42) = %q", got)
	}
	if got := itoa(1234); got != "1234" {
		t.Errorf("itoa(1234) = %q", got)
	}
	if got := meanInt([]int{1, 2, 3}); got != 2 {
		t.Errorf("meanInt = %v", got)
	}
	if got := meanInt(nil); got != 0 {
		t.Errorf("meanInt(nil) = %v", got)
	}
	if got := meanFloat([]float64{1, 3}); got != 2 {
		t.Errorf("meanFloat = %v", got)
	}
	if got := userName(3); got != "user-3" {
		t.Errorf("userName = %q", got)
	}
	if networkNodes(Small, 10, 20) != 10 || networkNodes(Full, 10, 20) != 20 {
		t.Error("networkNodes scale selection wrong")
	}
	if queries(Small, 1, 2) != 1 || queries(Full, 1, 2) != 2 {
		t.Error("queries scale selection wrong")
	}
}
