package experiments

import (
	"math"

	"opaque/internal/baseline"
	"opaque/internal/core"
	"opaque/internal/gen"
	"opaque/internal/obfsvc"
	"opaque/internal/obfuscate"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

// E1Baselines reproduces the Section II / Figure 2 comparison: existing
// location-privacy techniques applied to path queries either return an
// irrelevant path (landmark, cloaking) or return the exact path at a high
// server cost (naive decoy queries), while OPAQUE returns the exact path at a
// reduced cost with the same breach probability.
type E1Baselines struct{}

// ID implements Runner.
func (E1Baselines) ID() string { return "E1" }

// Description implements Runner.
func (E1Baselines) Description() string {
	return "Privacy mechanisms compared: exact-path rate, breach probability and server cost (Figure 2 / Section II)"
}

// Run implements Runner.
func (E1Baselines) Run(scale Scale) ([]*Table, error) {
	fx, err := newFixture(scale, gen.TigerLike, 101)
	if err != nil {
		return nil, err
	}
	g := fx.Graph
	nQueries := queries(scale, 30, 200)
	pairs := fx.Workload
	if len(pairs) > nQueries {
		pairs = pairs[:nQueries]
	}
	fakes := 3 // k decoys for the naive baseline; OPAQUE uses fS=2, fT=2 => same breach 1/4... see note below

	// Shared executor/server for every mechanism so page-fault accounting is
	// comparable. Reset stats between mechanisms.
	exec := obfsvc.ExecutorFunc(fx.Server.Evaluate)

	// True shortest-path costs as ground truth.
	acc := storage.NewMemoryGraph(g)
	trueCosts := make([]float64, len(pairs))
	for i, p := range pairs {
		d, err := search.DijkstraDistance(acc, p.Source, p.Dest)
		if err != nil {
			return nil, err
		}
		trueCosts[i] = d
	}

	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)

	// OPAQUE systems (independent and shared) share the same server so costs
	// are measured on identical storage state.
	mkOpaque := func(mode obfuscate.Mode) (*core.Mechanism, error) {
		cfg := core.DefaultConfig()
		cfg.Server = server.DefaultConfig()
		cfg.Server.Paged = true
		cfg.Server.BufferPages = 128
		cfg.Obfuscator.Obfuscation.Mode = mode
		cfg.Obfuscator.Obfuscation.Selector = defaultBandSelector(g, 77)
		sys, err := core.NewSystem(g, cfg)
		if err != nil {
			return nil, err
		}
		return core.NewMechanism(sys), nil
	}
	opaqueInd, err := mkOpaque(obfuscate.Independent)
	if err != nil {
		return nil, err
	}

	mechanisms := []baseline.Mechanism{
		baseline.NoPrivacy{Exec: exec},
		baseline.Landmark{Exec: exec, Graph: g, MinShift: 0.03 * extent, MaxShift: 0.10 * extent, Seed: 5},
		baseline.Cloaking{Exec: exec, Graph: g, CloakRadius: 0.05 * extent, Seed: 6},
		baseline.NaiveDecoys{Exec: exec, Graph: g, Decoys: fakes, Seed: 7},
		opaqueInd,
	}

	table := &Table{
		ID:    "E1",
		Title: "Privacy mechanisms on " + string(gen.TigerLike) + " network (" + itoa(g.NumNodes()) + " nodes, " + itoa(len(pairs)) + " queries)",
		Columns: []string{
			"mechanism", "exact-path rate", "mean breach prob", "mean settled nodes/query", "mean page faults/query", "mean candidate pairs",
		},
	}
	for _, m := range mechanisms {
		fx.Server.ResetStats()
		exact := 0
		var breach, settled, faults, pairsEvaluated []float64
		for i, p := range pairs {
			req := obfuscate.Request{User: obfuscate.UserID(userName(i)), Source: p.Source, Dest: p.Dest, FS: 2, FT: 2}
			out, err := m.Run(req, trueCosts[i])
			if err != nil {
				return nil, err
			}
			if out.ExactPath {
				exact++
			}
			breach = append(breach, out.BreachProbability)
			settled = append(settled, float64(out.ServerSettledNodes))
			faults = append(faults, float64(out.ServerPageFaults))
			pairsEvaluated = append(pairsEvaluated, float64(out.CandidatePairs))
		}
		table.AddRow(
			m.Name(),
			float64(exact)/float64(len(pairs)),
			meanFloat(breach),
			meanFloat(settled),
			meanFloat(faults),
			meanFloat(pairsEvaluated),
		)
	}
	table.AddNote("Paper expectation (Section II): landmark and cloaking rarely return the exact requested path; naive decoys and OPAQUE always do.")
	table.AddNote("OPAQUE (fS=2, fT=2, breach 1/4) should settle fewer nodes per query than naive decoys at comparable breach probability (1/%d), because destination-side fakes share one SSMD spanning tree.", fakes+1)
	return []*Table{table}, nil
}
