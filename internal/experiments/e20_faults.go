package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"opaque/internal/fleet"
	"opaque/internal/fleet/fleettest"
	"opaque/internal/gen"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/server"
)

// E20Faults measures availability under faults: the same obfuscated workload
// runs against a three-shard fleet while one shard is, in turn, healthy,
// crashed, restarted (cold, needing reconnect replay), and blackholed (alive
// but unreachable — the failure only heartbeats and deadlines can see). Every
// successful reply is verified against the single-server reference table, so
// the availability column counts *correct* answers: under OPAQUE's fleet
// contract a faulted shard may cost throughput but never an approximate or
// mixed-generation table. The phases isolate the two detection paths — a
// crash fails fast at dial time and trips the circuit breaker through the
// retry budget, while a blackhole is condemned by the mux heartbeat — and the
// restarted phase prices the last-write-wins replay that brings a cold shard
// back to the fleet metric.
type E20Faults struct{}

// ID implements Runner.
func (E20Faults) ID() string { return "E20" }

// Description implements Runner.
func (E20Faults) Description() string {
	return "Fleet availability under faults: crash, restart+replay, blackhole"
}

// Run implements Runner.
func (E20Faults) Run(scale Scale) ([]*Table, error) {
	nodes := networkNodes(scale, 2000, 12000)
	perPhase := 48
	if scale == Small {
		perPhase = 16
	}

	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = nodes
	netCfg.Seed = 2020
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(2021))
	qs := make([]protocol.ServerQuery, perPhase)
	for i := range qs {
		q := protocol.ServerQuery{QueryID: uint64(i + 1)}
		for s := 0; s < 2+rng.Intn(3); s++ {
			q.Sources = append(q.Sources, roadnet.NodeID(rng.Intn(g.NumNodes())))
		}
		for d := 0; d < 2+rng.Intn(3); d++ {
			q.Dests = append(q.Dests, roadnet.NodeID(rng.Intn(g.NumNodes())))
		}
		qs[i] = q
	}

	// A round of weight updates before any fault, so the restarted phase
	// really exercises replay: a cold shard answers the *base* metric until
	// the router's reconnect replay converges it.
	var changes []roadnet.ArcWeightChange
	for i := 0; i < 32; i++ {
		v := roadnet.NodeID(rng.Intn(g.NumNodes()))
		if arcs := g.Arcs(v); len(arcs) > 0 {
			changes = append(changes, roadnet.ArcWeightChange{From: v, To: arcs[0].To, NewCost: arcs[0].Cost * (0.5 + rng.Float64())})
		}
	}

	ref, err := server.New(g, server.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if _, err := ref.UpdateWeights(changes); err != nil {
		return nil, err
	}
	truth := make(map[uint64]protocol.ServerReply)
	for _, q := range qs {
		rep, err := ref.Evaluate(q)
		if err != nil {
			return nil, err
		}
		truth[q.QueryID] = rep
	}

	tbl := &Table{
		ID: "E20",
		Title: "Fleet availability under faults (" + itoa(nodes) + " nodes, 3 shards, " +
			itoa(perPhase) + " queries/phase, 2s deadlines)",
		Columns: []string{"config", "phase", "ok", "avail %", "wall ms",
			"failovers", "trips", "hb fails", "replays"},
	}

	for _, mode := range []fleet.Mode{fleet.ModePartition, fleet.ModeReplicate} {
		cl, err := fleettest.New(g, fleettest.Options{
			Shards: 3,
			Mode:   mode,
			Fleet: fleet.Config{
				Retries: 2, RetryBackoff: 2 * time.Millisecond,
				FailThreshold: 2, BreakerCooldown: 30 * time.Millisecond,
				FailoverRetries: 3,
				Heartbeat:       10 * time.Millisecond,
			},
		})
		if err != nil {
			return nil, err
		}
		if err := cl.Router.UpdateWeights(changes); err != nil {
			cl.Close()
			return nil, err
		}

		m := cl.Router.Metrics()
		last := map[string]int64{}
		delta := func(name string) int64 {
			cur := m.Counter(name)
			d := cur - last[name]
			last[name] = cur
			return d
		}
		runPhase := func(phase string) error {
			ok := 0
			start := time.Now()
			for _, q := range qs {
				rep, err := cl.Router.ExecuteDeadline(q, time.Now().Add(2*time.Second))
				if err != nil {
					continue // a typed failure costs availability, nothing else
				}
				if err := sameTable(rep, truth[q.QueryID]); err != nil {
					return fmt.Errorf("experiments: E20 %s/%s query %d answered a wrong table: %w", mode, phase, q.QueryID, err)
				}
				ok++
			}
			wall := time.Since(start)
			tbl.AddRow(mode.String(), phase, ok,
				100*float64(ok)/float64(perPhase),
				float64(wall.Microseconds())/1000,
				delta("fleet_failovers"), delta("fleet_breaker_trips"),
				delta("fleet_heartbeat_failures"), delta("fleet_replays"))
			return nil
		}

		fail := func(err error) ([]*Table, error) {
			cl.Close()
			return nil, err
		}
		if err := runPhase("healthy"); err != nil {
			return fail(err)
		}
		cl.Kill(1)
		if err := runPhase("crashed"); err != nil {
			return fail(err)
		}
		if err := cl.Restart(1); err != nil {
			return fail(err)
		}
		time.Sleep(50 * time.Millisecond) // cooldown: let the half-open probe re-admit it
		if err := runPhase("restarted"); err != nil {
			return fail(err)
		}
		cl.Shard(1).Blackhole(true)
		if err := runPhase("blackholed"); err != nil {
			return fail(err)
		}
		cl.Shard(1).Blackhole(false)
		time.Sleep(50 * time.Millisecond)
		if err := runPhase("recovered"); err != nil {
			return fail(err)
		}
		cl.Close()
	}

	tbl.AddNote("Every ok reply was verified candidate-by-candidate against the single-server reference over the post-update metric — availability counts correct tables only, so faults cost latency and throughput but never a wrong or mixed-generation answer.")
	tbl.AddNote("crashed fails fast at dial time: the retry budget trips the breaker and failover re-owns the dead shard's work (partition mode) or round-robins past it (replicate). blackholed is the silent failure: writes vanish, so detection is the 10ms heartbeat's ping deadline — trips and hb fails move together there.")
	tbl.AddNote("restarted prices reconnect replay: the shard comes back cold (base weights) and the router replays the cumulative last-write-wins state before routing to it; the ContentSum handshake refuses any merge until it converges, which is why avail stays high rather than correctness dropping.")
	return []*Table{tbl}, nil
}
