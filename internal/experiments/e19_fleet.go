package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"opaque/internal/fleet"
	"opaque/internal/fleet/fleettest"
	"opaque/internal/gen"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/server"
)

// E19Fleet measures the sharded serving tier against the single server it
// must be indistinguishable from: the same obfuscated batch workload runs on
// one server, on a router over two partition shards (queries split by cell
// ownership, partial tables merged), and on a router over two replicated
// shards (whole queries round-robin) — all in-process over net.Pipe via the
// fleettest harness, so the table isolates the scatter/gather and transport
// cost rather than kernel networking. Every fleet reply is verified
// candidate-by-candidate against the single-server reference table before it
// counts; the subquery column shows the partition fan-out (subqueries per
// query > 1 means real scatter/gather, not pass-through), and the skew column
// must stay 0 on a quiescent fleet.
type E19Fleet struct{}

// ID implements Runner.
func (E19Fleet) ID() string { return "E19" }

// Description implements Runner.
func (E19Fleet) Description() string {
	return "Fleet serving tier: scatter/gather throughput vs a single server"
}

// Run implements Runner.
func (E19Fleet) Run(scale Scale) ([]*Table, error) {
	nodes := networkNodes(scale, 3000, 20000)
	batches := 6
	perBatch := 24
	if scale == Small {
		batches = 3
		perBatch = 12
	}

	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = nodes
	netCfg.Seed = 1919
	g, err := gen.Generate(netCfg)
	if err != nil {
		return nil, err
	}

	// E15-style obfuscated batch workload: mixed |S|,|T| in [2,4].
	rng := rand.New(rand.NewSource(1920))
	workload := make([][]protocol.ServerQuery, batches)
	qid := uint64(0)
	for b := range workload {
		qs := make([]protocol.ServerQuery, perBatch)
		for i := range qs {
			qid++
			q := protocol.ServerQuery{QueryID: qid}
			for s := 0; s < 2+rng.Intn(3); s++ {
				q.Sources = append(q.Sources, roadnet.NodeID(rng.Intn(g.NumNodes())))
			}
			for d := 0; d < 2+rng.Intn(3); d++ {
				q.Dests = append(q.Dests, roadnet.NodeID(rng.Intn(g.NumNodes())))
			}
			qs[i] = q
		}
		workload[b] = qs
	}

	ref, err := server.New(g, server.DefaultConfig())
	if err != nil {
		return nil, err
	}
	// Reference tables, computed once, double as the ground truth every
	// fleet reply is verified against.
	truth := make(map[uint64]protocol.ServerReply)
	for _, qs := range workload {
		for _, q := range qs {
			rep, err := ref.Evaluate(q)
			if err != nil {
				return nil, err
			}
			truth[q.QueryID] = rep
		}
	}

	tbl := &Table{
		ID:    "E19",
		Title: "Fleet serving tier vs single server (" + itoa(nodes) + " nodes, " + itoa(batches*perBatch) + " queries, net.Pipe transport)",
		Columns: []string{"config", "queries", "wall ms", "queries/s",
			"subq/query", "gen skew", "verified"},
	}

	// Single-server baseline through the same batch engine the shards use.
	singleStart := time.Now()
	for _, qs := range workload {
		for i, res := range ref.EvaluateBatch(qs) {
			if res.Err != nil {
				return nil, fmt.Errorf("experiments: E19 single server query %d: %w", qs[i].QueryID, res.Err)
			}
		}
	}
	singleWall := time.Since(singleStart)
	total := batches * perBatch
	tbl.AddRow("single", total, float64(singleWall.Microseconds())/1000,
		float64(total)/singleWall.Seconds(), 1.0, 0, total)

	for _, mode := range []fleet.Mode{fleet.ModePartition, fleet.ModeReplicate} {
		cl, err := fleettest.New(g, fleettest.Options{Shards: 2, Mode: mode})
		if err != nil {
			return nil, err
		}
		verified := 0
		start := time.Now()
		for _, qs := range workload {
			replies, errs := cl.Router.ExecuteBatch(qs)
			for i, qerr := range errs {
				if qerr != nil {
					cl.Close()
					return nil, fmt.Errorf("experiments: E19 %s query %d: %w", mode, qs[i].QueryID, qerr)
				}
				if err := sameTable(replies[i], truth[qs[i].QueryID]); err != nil {
					cl.Close()
					return nil, fmt.Errorf("experiments: E19 %s query %d: %w", mode, qs[i].QueryID, err)
				}
				verified++
			}
		}
		wall := time.Since(start)
		m := cl.Router.Metrics()
		tbl.AddRow(mode.String(), total, float64(wall.Microseconds())/1000,
			float64(total)/wall.Seconds(),
			float64(m.Counter("fleet_subqueries"))/float64(m.Counter("fleet_queries")),
			m.Counter("fleet_generation_skew"), verified)
		cl.Close()
	}

	tbl.AddNote("Router + 2 shards per fleet row, each shard a full server over the replicated map; partition mode splits each query's sources by cell ownership (subq/query > 1) and stitches the partial tables source-major, replicate mode round-robins whole queries (subq/query = 1).")
	tbl.AddNote("Every fleet reply was verified candidate-by-candidate (reachability, cost, node sequence) against the single-server reference table; gen skew counts merges the router refused — 0 on this quiescent fleet, and any refused merge retries rather than ever mixing weight generations.")
	tbl.AddNote("Acceptance bar: verified = queries for every config; the fleet rows pay the gob/frame transport plus scatter/gather on top of evaluation, so queries/s below the single-server row measures serving-tier overhead, not lost correctness.")
	return []*Table{tbl}, nil
}

// sameTable compares one fleet reply to the reference table exactly.
func sameTable(got, want protocol.ServerReply) error {
	if len(got.Paths) != len(want.Paths) {
		return fmt.Errorf("table has %d candidates, reference %d", len(got.Paths), len(want.Paths))
	}
	for i := range want.Paths {
		gp, wp := got.Paths[i], want.Paths[i]
		if gp.Source != wp.Source || gp.Dest != wp.Dest || gp.Found != wp.Found {
			return fmt.Errorf("slot %d: (%d,%d,found=%v), reference (%d,%d,found=%v)",
				i, gp.Source, gp.Dest, gp.Found, wp.Source, wp.Dest, wp.Found)
		}
		if !gp.Found {
			continue
		}
		if math.Abs(gp.Cost-wp.Cost) > 1e-9 {
			return fmt.Errorf("slot %d: cost %v, reference %v", i, gp.Cost, wp.Cost)
		}
		if len(gp.Nodes) != len(wp.Nodes) {
			return fmt.Errorf("slot %d: path length %d, reference %d", i, len(gp.Nodes), len(wp.Nodes))
		}
		for j := range wp.Nodes {
			if gp.Nodes[j] != wp.Nodes[j] {
				return fmt.Errorf("slot %d: node %d is %d, reference %d", i, j, gp.Nodes[j], wp.Nodes[j])
			}
		}
	}
	return nil
}
