package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunAtSmallScale executes every experiment runner end to
// end at small scale and checks the structural properties the benchmark
// harness and cmd/opaque-bench rely on: at least one table per experiment,
// non-empty rows, cells matching the declared columns, and at least one
// explanatory note tying the table back to the paper. It is the integration
// test for the whole reproduction pipeline; skip it with -short.
func TestAllExperimentsRunAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	for _, runner := range All() {
		runner := runner
		t.Run(runner.ID(), func(t *testing.T) {
			tables, err := runner.Run(Small)
			if err != nil {
				t.Fatalf("%s failed: %v", runner.ID(), err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", runner.ID())
			}
			for _, tbl := range tables {
				if tbl.ID == "" || tbl.Title == "" {
					t.Errorf("%s: table missing id or title", runner.ID())
				}
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: table %s has no rows", runner.ID(), tbl.ID)
				}
				for i, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Errorf("%s: table %s row %d has %d cells for %d columns", runner.ID(), tbl.ID, i, len(row), len(tbl.Columns))
					}
					for j, cell := range row {
						if strings.TrimSpace(cell) == "" {
							t.Errorf("%s: table %s row %d column %q is empty", runner.ID(), tbl.ID, i, tbl.Columns[j])
						}
					}
				}
				if len(tbl.Notes) == 0 {
					t.Errorf("%s: table %s carries no expectation note", runner.ID(), tbl.ID)
				}
				if !strings.Contains(tbl.String(), tbl.Columns[0]) {
					t.Errorf("%s: rendering lost the header", runner.ID())
				}
			}
		})
	}
}
