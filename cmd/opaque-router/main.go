// Command opaque-router runs the OPAQUE fleet router: it fronts N
// opaque-server shards behind one multiplexed listener, splits every
// obfuscated path query by shard ownership (partition mode) or spreads whole
// queries round-robin (replicate mode), scatter/gathers the partial distance
// tables and merges them into single replies. Weight updates are broadcast to
// every shard and folded into a cumulative replay state, so a shard that
// restarts is brought back to the fleet metric before it answers queries.
//
// The router refuses to merge partial tables computed under different weight
// generations or profiles — skew is retried against the converging fleet and
// surfaced on the fleet_generation_skew counter, never silently merged.
//
// Usage:
//
//	opaque-router -shards host1:7001,host2:7001 -listen :7000 -network network.txt
//	opaque-router -shards :7001,:7011 -listen :7000 -generate tigerlike -nodes 20000 -mode replicate
//
// Partition mode needs the same road network the shards serve (via -network
// or -generate/-nodes/-seed) to build the spatial partition that maps query
// endpoints to owning shards; replicate mode needs no map.
package main

import (
	"flag"
	"log"
	"net"
	"strings"
	"time"

	"opaque/internal/fleet"
	"opaque/internal/gen"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("opaque-router: ")

	var (
		shardsFlag    = flag.String("shards", "", "comma-separated opaque-server shard addresses (required)")
		listen        = flag.String("listen", ":7000", "TCP listen address for obfuscator connections")
		mode          = flag.String("mode", "partition", "fleet shape: partition (split queries by cell ownership) | replicate (whole queries round-robin)")
		networkFile   = flag.String("network", "", "road network file the shards serve (partition mode)")
		generate      = flag.String("generate", "", "generate the network instead of loading one: grid | geometric | ringradial | tigerlike")
		nodes         = flag.Int("nodes", 10000, "node count when generating")
		seed          = flag.Uint64("seed", 42, "generation seed")
		cells         = flag.Int("cells", 0, "partition cell count for ownership mapping (0 = 4 x shards)")
		retries       = flag.Int("retries", 0, "per-shard reconnect attempts before a subquery fails (0 = default)")
		quorum        = flag.Int("quorum", 0, "weight-update ack quorum: UpdateWeights returns after this many shards ack, replay covers stragglers (0 = 1, any reachable shard; clamps to the fleet size)")
		heartbeat     = flag.Duration("heartbeat", 0, "health-probe interval: ping every shard over the mux identity stream and redial down shards through the breaker's half-open gate (0 disables; health is then tracked from query traffic alone)")
		deadline      = flag.Duration("deadline", 0, "default per-request deadline applied to requests that carry none: expired work is dropped at the router and shards instead of evaluated (0 = unbounded)")
		maxInFlight   = flag.Int("max-inflight", 0, "per-connection in-flight request cap on the client-facing listener (0 = default)")
		shedAt        = flag.Int("shed-at", 0, "admission-control watermark: at this many in-flight requests per connection, shed queries to distance-only answers (0 disables)")
		statsInterval = flag.Duration("stats-interval", 0, "periodically log scatter/gather and skew counters (0 disables)")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*shardsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("-shards is required (comma-separated opaque-server addresses)")
	}

	cfg := fleet.Config{
		Retries:         *retries,
		UpdateQuorum:    *quorum,
		Heartbeat:       *heartbeat,
		DefaultDeadline: *deadline,
	}
	switch *mode {
	case "partition":
		cfg.Mode = fleet.ModePartition
		if len(addrs) > 1 {
			g, err := gen.LoadOrGenerate(*networkFile, *generate, *nodes, *seed)
			if err != nil {
				log.Fatalf("partition mode needs the shard road network (-network or -generate): %v", err)
			}
			nCells := *cells
			if nCells <= 0 {
				nCells = 4 * len(addrs)
			}
			part, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: nCells, Seed: int64(*seed)})
			if err != nil {
				log.Fatalf("partitioning the map: %v", err)
			}
			cfg.Partition = part
			log.Printf("partitioned %d nodes into %d cells across %d shards", g.NumNodes(), part.NumCells(), len(addrs))
		}
	case "replicate":
		cfg.Mode = fleet.ModeReplicate
	default:
		log.Fatalf("-mode must be partition or replicate (got %q)", *mode)
	}

	dialers := make([]fleet.Dialer, len(addrs))
	for i, addr := range addrs {
		addr := addr
		dialers[i] = func() (*protocol.MuxClient, error) {
			return protocol.DialMux(addr, protocol.Hello{Node: "router", Role: "router"})
		}
	}
	router, err := fleet.New(cfg, dialers)
	if err != nil {
		log.Fatalf("building router: %v", err)
	}
	defer router.Close()

	if *statsInterval > 0 {
		go logStats(router, *statsInterval)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	log.Printf("fleet router ready on %s (%d shards, mode=%s)", ln.Addr(), len(addrs), cfg.Mode)
	if err := router.ServeMux(ln, protocol.MuxServerConfig{MaxInFlight: *maxInFlight, ShedAt: *shedAt}); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

// logStats periodically prints the router's scatter/gather counters — queries
// and subqueries (the fan-out ratio), generation/profile skew refusals,
// reconnect retries, exhausted-shard failures, degraded (shed) replies,
// weight-update broadcast/replay activity — plus the health model: per-shard
// up/down states, breaker trips, heartbeat failures, failovers and
// deadline-dropped requests.
func logStats(r *fleet.Router, every time.Duration) {
	for range time.Tick(every) {
		m := r.Metrics()
		states := r.ShardStates()
		shardCol := make([]string, len(states))
		for i, s := range states {
			shardCol[i] = s.String()
		}
		log.Printf("stats: queries=%d subqueries=%d | skew gen=%d profile=%d | retries=%d failures=%d degraded=%d | weight-updates=%d replays=%d | shards=%s failovers=%d trips=%d hb-fails=%d deadline-drops=%d",
			m.Counter("fleet_queries"), m.Counter("fleet_subqueries"),
			m.Counter("fleet_generation_skew"), m.Counter("fleet_profile_skew"),
			m.Counter("fleet_shard_retries"), m.Counter("fleet_shard_failures"), m.Counter("fleet_degraded_replies"),
			m.Counter("fleet_weight_updates"), m.Counter("fleet_replays"),
			strings.Join(shardCol, ","), m.Counter("fleet_failovers"), m.Counter("fleet_breaker_trips"),
			m.Counter("fleet_heartbeat_failures"), m.Counter("fleet_deadline_exceeded"))
	}
}
