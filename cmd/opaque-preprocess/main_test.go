package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"opaque/internal/ch"
	"opaque/internal/gen"
)

// TestRunBuildsVerifiesAndWrites drives the whole command on a small
// generated map: build, self-check against Dijkstra, persist, and reload the
// written file against the same graph.
func TestRunBuildsVerifiesAndWrites(t *testing.T) {
	out := &bytes.Buffer{}
	path := filepath.Join(t.TempDir(), "net.och")
	err := run([]string{"-generate", "grid", "-nodes", "400", "-seed", "7", "-check", "20", "-out", path}, out, out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out)
	}
	for _, want := range []string{"contracted in", "verified 20 random queries", "verified mtm 2x2 table", "overlay written"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	overlay, err := ch.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.Grid
	cfg.Nodes = 400
	cfg.Seed = 7
	g := gen.MustGenerate(cfg)
	if err := overlay.Matches(g); err != nil {
		t.Fatalf("written overlay does not match its source graph: %v", err)
	}
}

// TestRunUsageErrors covers the required-flag and bad-flag paths.
func TestRunUsageErrors(t *testing.T) {
	out := &bytes.Buffer{}
	if err := run([]string{"-generate", "grid", "-nodes", "50"}, out, out); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run([]string{"-no-such-flag"}, out, out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-network", "/nonexistent/net.txt", "-out", filepath.Join(t.TempDir(), "x.och")}, out, out); err == nil {
		t.Fatal("nonexistent network file accepted")
	}
}
