// Command opaque-preprocess runs the offline contraction-hierarchies pass
// over a road network and persists the resulting overlay in the OCH1 binary
// format (docs/FORMATS.md), so servers can load a prebuilt hierarchy instead
// of contracting the map at startup:
//
//	opaque-preprocess -network network.txt -out network.och
//	opaque-preprocess -generate tigerlike -nodes 50000 -out net.och -check 100
//	opaque-server -network network.txt -strategy ch -ch-overlay network.och
//
// The overlay embeds a checksum of the graph it was built from; the server
// refuses to install it against any other map.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"
	"time"

	"opaque/internal/ch"
	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/storage"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opaque-preprocess: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// errUsage marks a command-line parse failure whose details the flag package
// has already written to the diagnostic stream.
var errUsage = errors.New("invalid command line")

// run parses args, builds the overlay and writes it, reporting progress to
// out. It is the testable core of the command.
func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("opaque-preprocess", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		networkFile  = fs.String("network", "", "road network file in roadnet text format")
		generate     = fs.String("generate", "", "generate a network instead of loading one: grid | geometric | ringradial | tigerlike")
		nodes        = fs.Int("nodes", 10000, "node count when generating")
		seed         = fs.Uint64("seed", 42, "generation seed")
		outFile      = fs.String("out", "", "output overlay file (required)")
		witnessLimit = fs.Int("witness-limit", 0, "witness search settle budget (0 = default; larger = slower build, fewer redundant shortcuts)")
		customizable = fs.Bool("customizable", false, "contract metric-independently: the overlay absorbs live weight updates via re-customization (larger file, required for opaque-server deployments that call UpdateWeights)")
		partition    = fs.Int("partition-cells", 0, "cut the map into this many spatial cells and contract cell by cell (boundary nodes last): weight updates then re-customize only the touched cells, and paged servers page overlay layers per cell (0 = flat contraction)")
		check        = fs.Int("check", 0, "verify this many random queries against Dijkstra after building")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}
	if *outFile == "" {
		fmt.Fprintln(errOut, "opaque-preprocess: -out is required")
		return errUsage
	}

	g, err := gen.LoadOrGenerate(*networkFile, *generate, *nodes, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "road network: %d nodes, %d arcs\n", g.NumNodes(), g.NumArcs())

	cfg := ch.DefaultBuildConfig()
	if *witnessLimit > 0 {
		cfg.WitnessSettleLimit = *witnessLimit
	}
	cfg.Customizable = *customizable
	if *partition > 1 {
		part, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: *partition, Seed: int64(*seed)})
		if err != nil {
			return err
		}
		cfg.Partition = part
		fmt.Fprintf(out, "partitioned into %d cells (%d boundary nodes, %d cut arcs)\n",
			part.NumCells(), part.NumBoundary(), part.CutArcCount())
	}
	start := time.Now()
	overlay, err := ch.BuildWithConfig(g, cfg)
	if err != nil {
		return err
	}
	buildTime := time.Since(start)
	mode := "witness-pruned"
	if overlay.Customizable() {
		mode = "customizable (absorbs live weight updates)"
	}
	fmt.Fprintf(out, "contracted in %v (%s): %d shortcuts over %d original arcs (%.2fx), max level %d\n",
		buildTime.Round(time.Millisecond), mode, overlay.NumShortcuts(), overlay.NumOriginalArcs(),
		float64(overlay.NumShortcuts())/float64(max(overlay.NumOriginalArcs(), 1)), overlay.MaxLevel())

	if *check > 0 {
		if err := verify(out, g, overlay, *check, *seed); err != nil {
			return err
		}
	}

	if err := ch.WriteFile(overlay, *outFile); err != nil {
		return err
	}
	if info, err := os.Stat(*outFile); err == nil {
		fmt.Fprintf(out, "overlay written to %s (%d bytes, checksum %016x)\n", *outFile, info.Size(), overlay.Checksum())
	}
	return nil
}

// verify cross-checks n random point queries between the overlay and plain
// workspace Dijkstra and reports the observed speedup, then runs a small
// many-to-many self-check so a shipped overlay is validated for both query
// modes (the bidirectional point engine and the bucket table engine).
func verify(out io.Writer, g *roadnet.Graph, overlay *ch.Overlay, n int, seed uint64) error {
	acc := storage.NewMemoryGraph(g)
	eng := ch.NewEngine(overlay, nil)
	rng := rand.New(rand.NewSource(int64(seed) + 1))
	var chTime, djTime time.Duration
	for i := 0; i < n; i++ {
		s := roadnet.NodeID(rng.Intn(g.NumNodes()))
		d := roadnet.NodeID(rng.Intn(g.NumNodes()))
		t0 := time.Now()
		got, _, err := eng.Distance(s, d)
		if err != nil {
			return err
		}
		chTime += time.Since(t0)
		t0 = time.Now()
		want, err := search.DijkstraDistance(acc, s, d)
		if err != nil {
			return err
		}
		djTime += time.Since(t0)
		// Compare reachability before applying the relative tolerance: with
		// either side at +Inf the tolerance itself degenerates to +Inf and
		// would wave any finite disagreement through.
		if math.IsInf(got, 1) != math.IsInf(want, 1) {
			return fmt.Errorf("verification failed: pair (%d,%d) CH distance %v, Dijkstra %v (reachability disagrees)", s, d, got, want)
		}
		if got != want && math.Abs(got-want) > 1e-9*(1+want) {
			return fmt.Errorf("verification failed: pair (%d,%d) CH distance %v, Dijkstra %v", s, d, got, want)
		}
	}
	speedup := 0.0
	if chTime > 0 {
		speedup = float64(djTime) / float64(chTime)
	}
	fmt.Fprintf(out, "verified %d random queries against Dijkstra (CH %.1fx faster on this sample)\n", n, speedup)

	// Many-to-many self-check: one 2×2 table against per-pair Dijkstra.
	mtm := ch.NewMTM(overlay, nil)
	sources := []roadnet.NodeID{roadnet.NodeID(rng.Intn(g.NumNodes())), roadnet.NodeID(rng.Intn(g.NumNodes()))}
	targets := []roadnet.NodeID{roadnet.NodeID(rng.Intn(g.NumNodes())), roadnet.NodeID(rng.Intn(g.NumNodes()))}
	table, _, err := mtm.Distances(sources, targets)
	if err != nil {
		return fmt.Errorf("mtm self-check failed: %w", err)
	}
	for i, s := range sources {
		for j, d := range targets {
			want, err := search.DijkstraDistance(acc, s, d)
			if err != nil {
				return err
			}
			got := table[i*len(targets)+j]
			if math.IsInf(got, 1) != math.IsInf(want, 1) {
				return fmt.Errorf("mtm self-check failed: pair (%d,%d) MTM distance %v, Dijkstra %v (reachability disagrees)", s, d, got, want)
			}
			if got != want && math.Abs(got-want) > 1e-9*(1+want) {
				return fmt.Errorf("mtm self-check failed: pair (%d,%d) MTM distance %v, Dijkstra %v", s, d, got, want)
			}
		}
	}
	fmt.Fprintf(out, "verified mtm 2x2 table against Dijkstra (many-to-many query mode ok)\n")
	return nil
}
