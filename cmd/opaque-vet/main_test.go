package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// badmodDir is a self-contained one-file module with one known sentinelis
// violation (testdata/badmod), so the command tests drive the full
// load-analyze-report-exit path without typechecking the real module — the
// repo-wide clean run is covered by internal/analysis's TestRepoIsClean.
func badmodDir(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, badmodDir(t), &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"snapshotpin", "wspool", "noalloc", "framecase", "sentinelis"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestFindingsExitOne(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(nil, badmodDir(t), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "bad.go:12: [sentinelis]") {
		t.Errorf("finding not reported as file:line: [name]:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr missing finding count: %s", stderr.String())
	}
}

func TestOnlySubsetExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "noalloc,wspool"}, badmodDir(t), &stdout, &stderr); code != 0 {
		t.Fatalf("-only noalloc,wspool exited %d over a module whose only violation is sentinelis; stdout: %s",
			code, stdout.String())
	}
}

func TestOnlyUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, badmodDir(t), &stdout, &stderr); code != 2 {
		t.Fatalf("-only nosuch exited %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "nosuch") {
		t.Errorf("stderr does not name the unknown analyzer: %s", stderr.String())
	}
}

func TestPatternExcludesFindings(t *testing.T) {
	// A pattern naming a subtree with no violations filters the finding out.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./nosuchdir/..."}, badmodDir(t), &stdout, &stderr); code != 0 {
		t.Fatalf("excluding pattern exited %d; stdout: %s", code, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("excluding pattern still printed findings: %s", stdout.String())
	}
}

func TestPatternSelectsFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, badmodDir(t), &stdout, &stderr); code != 1 {
		t.Fatalf("./... exited %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "[sentinelis]") {
		t.Errorf("./... missed the violation:\n%s", stdout.String())
	}
}
