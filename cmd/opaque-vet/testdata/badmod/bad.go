// Package badmod is a one-file module with a known sentinelis violation;
// the opaque-vet command tests point the driver at it to exercise the
// finding/exit-code path without typechecking the whole real module.
package badmod

import "errors"

// ErrBoom is a module sentinel.
var ErrBoom = errors.New("boom")

// Check compares by identity — the violation the tests expect.
func Check(err error) bool { return err == ErrBoom }
