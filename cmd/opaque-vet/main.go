// Command opaque-vet runs the project's static-analysis suite
// (internal/analysis): five analyzers enforcing the codebase's hot-path and
// concurrency invariants — snapshot pinning, workspace-pool hygiene,
// zero-allocation annotations, exhaustive frame-type switches and
// errors.Is on typed sentinels. See docs/LINTS.md for what each analyzer
// checks and how to waive a finding.
//
// Usage:
//
//	opaque-vet [-list] [-only name,...] [pattern ...]
//
// Patterns select packages by directory, go-style: ./... (everything, the
// default), ./internal/search (one package), ./internal/... (a subtree).
// Findings are printed as file:line: [name] message; the exit status is 1
// when anything is found, 2 on usage or load errors.
//
// During iteration, run a single analyzer over one package:
//
//	go run ./cmd/opaque-vet -only wspool ./internal/search/...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"opaque/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], mustGetwd(), os.Stdout, os.Stderr))
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "opaque-vet:", err)
		os.Exit(2)
	}
	return wd
}

// run is the testable main: argv without the program name, the working
// directory and the output streams. It returns the process exit code.
func run(argv []string, wd string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("opaque-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers of the suite and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *only != "" {
		var err error
		analyzers, err = analysis.ByName(*only)
		if err != nil {
			fmt.Fprintln(stderr, "opaque-vet:", err)
			return 2
		}
	}

	root, err := moduleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "opaque-vet:", err)
		return 2
	}
	mod, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "opaque-vet:", err)
		return 2
	}

	match, err := patternMatcher(fs.Args(), wd, root)
	if err != nil {
		fmt.Fprintln(stderr, "opaque-vet:", err)
		return 2
	}

	found := 0
	for _, f := range analysis.Run(mod, analyzers) {
		rel, err := filepath.Rel(wd, f.Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			rel = f.Pos.Filename
		}
		if !match(f.Pos.Filename) {
			continue
		}
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", rel, f.Pos.Line, f.Analyzer, f.Message)
		found++
	}
	if found > 0 {
		fmt.Fprintf(stderr, "opaque-vet: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// patternMatcher compiles go-style package patterns into a filename filter.
// Patterns are resolved against wd; no patterns (or ./...) selects the whole
// module.
func patternMatcher(patterns []string, wd, root string) (func(string) bool, error) {
	if len(patterns) == 0 {
		return func(string) bool { return true }, nil
	}
	type rule struct {
		dir     string // absolute directory
		subtree bool
	}
	var rules []rule
	for _, p := range patterns {
		subtree := false
		if p == "..." {
			p = "./..."
		}
		if strings.HasSuffix(p, "/...") {
			subtree = true
			p = strings.TrimSuffix(p, "/...")
		}
		if p == "." && subtree && wd == root {
			return func(string) bool { return true }, nil
		}
		abs := p
		if !filepath.IsAbs(p) {
			abs = filepath.Join(wd, p)
		}
		rules = append(rules, rule{dir: filepath.Clean(abs), subtree: subtree})
	}
	return func(filename string) bool {
		dir := filepath.Dir(filename)
		for _, r := range rules {
			if dir == r.dir {
				return true
			}
			if r.subtree && strings.HasPrefix(dir, r.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}
