// Command opaque-server runs the OPAQUE directions search server: it loads a
// road network, installs the obfuscated path query processor and answers
// obfuscated path queries from obfuscators over TCP.
//
// Usage:
//
//	opaque-server -network network.txt -listen :7001
//	opaque-server -generate tigerlike -nodes 20000 -listen :7001
//	opaque-server -network network.txt -strategy hybrid -ch-overlay network.och
//	opaque-server -network network.txt -strategy ch-mtm -ch-overlay network.och
//
// With -profiles the server precustomizes time-of-day weight-profile layers
// (e.g. am-peak) that queries select by name with zero customization work on
// the query path. With -churn it synthesizes a streaming traffic feed through
// the coalescing ingestion pipeline, exercising live weight updates and
// pipelined overlay re-customization continuously.
//
// With -stats-interval the server periodically logs its throughput counters,
// the strategy routing split (pairwise CH / many-to-many / flat fallback),
// the many-to-many bucket engine gauges, the ingestion pipeline and profile
// layer counters, the SSMD tree cache hit ratio and the search workspace
// pool counters.
package main

import (
	"flag"
	"log"
	"math/rand"
	"net"
	"strings"
	"time"

	"opaque/internal/ch"
	"opaque/internal/costmodel"
	"opaque/internal/gen"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
	"opaque/internal/traffic"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("opaque-server: ")

	var (
		networkFile   = flag.String("network", "", "road network file in roadnet text format")
		generate      = flag.String("generate", "", "generate a network instead of loading one: grid | geometric | ringradial | tigerlike")
		nodes         = flag.Int("nodes", 10000, "node count when generating")
		seed          = flag.Uint64("seed", 42, "generation seed")
		listen        = flag.String("listen", ":7001", "TCP listen address for obfuscator connections")
		strategy      = flag.String("strategy", "ssmd", "query evaluation strategy: ssmd | pairwise | pairwise-astar | pairwise-alt | ch | ch-mtm | hybrid")
		workers       = flag.Int("workers", 1, "concurrent per-source searches per query")
		batchWorkers  = flag.Int("batch-workers", 0, "concurrent queries per batch in the batch engine (0 = GOMAXPROCS)")
		maxSearches   = flag.Int("max-searches", 0, "server-wide cap on concurrent per-source searches (0 = unbounded)")
		treeCache     = flag.Int("tree-cache", 0, "SSMD tree cache capacity in trees (0 disables the cache)")
		paged         = flag.Bool("paged", false, "simulate disk-resident storage with an LRU buffer pool")
		bufferPages   = flag.Int("buffer-pages", 256, "buffer pool capacity in pages (with -paged)")
		landmarks     = flag.Int("landmarks", 0, "prepare this many ALT landmarks at startup (required for -strategy pairwise-alt)")
		chOverlay     = flag.String("ch-overlay", "", "contraction-hierarchy overlay file built by opaque-preprocess (with -strategy ch|hybrid; empty = contract at startup)")
		chMaxPairs    = flag.Int("ch-max-pairs", 0, "hybrid cutover: queries with at most this many |S|·|T| pairs go to the CH overlay (0 = default)")
		partition     = flag.Int("partition-cells", 0, "contract the startup overlay partition-aware with this many spatial cells: weight updates re-customize only the touched cells (0 = flat; ignored with -ch-overlay, whose file carries its own partition)")
		profiles      = flag.String("profiles", "", `precustomize weight-profile layers: "timeofday" for the built-in catalog, or a comma list of catalog names (am-peak,pm-peak,offpeak,night); queries select one by name`)
		profileCap    = flag.Int("profile-capacity", 0, "max resident profile layers behind the LRU (0 = all configured; with -profiles)")
		churn         = flag.Float64("churn", 0, "synthesize a streaming traffic feed at this many weight-change events/sec through the coalescing ingestion pipeline (0 disables)")
		churnArcs     = flag.Int("churn-arcs", 64, "hot-arc pool size of the synthetic -churn stream")
		statsInterval = flag.Duration("stats-interval", 0, "periodically log query/cache/workspace-pool statistics (0 disables)")
		legacyOneShot = flag.Bool("legacy-oneshot", false, "serve the legacy one-shot gob protocol instead of the multiplexed framed transport")
		maxInFlight   = flag.Int("max-inflight", 0, "per-connection in-flight request cap on the multiplexed transport (0 = default)")
		shedAt        = flag.Int("shed-at", 0, "admission-control watermark: at this many in-flight requests per connection, shed queries to distance-only answers (0 disables)")
	)
	flag.Parse()

	g, err := gen.LoadOrGenerate(*networkFile, *generate, *nodes, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("road network loaded: %d nodes, %d arcs", g.NumNodes(), g.NumArcs())

	cfg := server.DefaultConfig()
	cfg.Strategy = search.Strategy(*strategy)
	cfg.Workers = *workers
	cfg.BatchWorkers = *batchWorkers
	cfg.MaxConcurrentSearches = *maxSearches
	cfg.TreeCache = *treeCache
	cfg.Paged = *paged
	cfg.PageConfig = storage.DefaultConfig()
	cfg.BufferPages = *bufferPages
	cfg.Landmarks = *landmarks
	cfg.CHMaxPairs = *chMaxPairs
	// Refuse misdirected CH flags rather than silently serve with them
	// ignored: -ch-overlay needs a CH-capable strategy, and the pair cutover
	// only exists in hybrid routing (-strategy ch sends everything to CH).
	if *chOverlay != "" && cfg.Strategy != server.StrategyCH && cfg.Strategy != server.StrategyCHMTM && cfg.Strategy != server.StrategyHybrid {
		log.Fatalf("-ch-overlay requires -strategy ch, ch-mtm or hybrid (got %q)", cfg.Strategy)
	}
	if *chMaxPairs != 0 && cfg.Strategy != server.StrategyHybrid {
		log.Fatalf("-ch-max-pairs requires -strategy hybrid (got %q)", cfg.Strategy)
	}
	if *chMaxPairs < 0 {
		log.Fatalf("-ch-max-pairs must be non-negative (got %d); server.New would silently fall back to the default cutover", *chMaxPairs)
	}
	if *partition > 0 && *chOverlay != "" {
		log.Fatalf("-partition-cells shapes the startup contraction and cannot apply to a loaded overlay; build the partitioned file with opaque-preprocess -partition-cells instead")
	}
	if *partition > 0 && cfg.Strategy != server.StrategyCH && cfg.Strategy != server.StrategyCHMTM && cfg.Strategy != server.StrategyHybrid {
		log.Fatalf("-partition-cells requires -strategy ch, ch-mtm or hybrid (got %q)", cfg.Strategy)
	}
	if cfg.Strategy == server.StrategyCH || cfg.Strategy == server.StrategyCHMTM || cfg.Strategy == server.StrategyHybrid {
		if *chOverlay != "" {
			overlay, err := ch.ReadFile(*chOverlay)
			if err != nil {
				log.Fatalf("loading CH overlay: %v", err)
			}
			log.Printf("CH overlay loaded from %s: %d shortcuts, max level %d", *chOverlay, overlay.NumShortcuts(), overlay.MaxLevel())
			cfg.CHOverlay = overlay
		} else {
			// Contract here rather than through Config.BuildCH so the logged
			// duration covers exactly the contraction pass, not the rest of
			// server construction (page store, landmarks, …).
			log.Printf("no -ch-overlay given; contracting the map at startup (persist one with opaque-preprocess to skip this)")
			buildCfg := ch.DefaultBuildConfig()
			// Customizable contraction lets the in-memory server absorb live
			// weight updates (UpdateWeights); paged deployments serve a frozen
			// store, so they keep the smaller witness-pruned overlay.
			buildCfg.Customizable = !cfg.Paged
			if *partition > 1 {
				part, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: *partition, Seed: int64(*seed)})
				if err != nil {
					log.Fatalf("partitioning the map: %v", err)
				}
				buildCfg.Partition = part
				log.Printf("partitioned into %d cells (%d boundary nodes, %d cut arcs); weight updates re-customize touched cells only",
					part.NumCells(), part.NumBoundary(), part.CutArcCount())
			}
			contractStart := time.Now()
			overlay, err := ch.BuildWithConfig(g, buildCfg)
			if err != nil {
				log.Fatalf("contracting the map: %v", err)
			}
			log.Printf("CH overlay contracted in %v: %d shortcuts, max level %d",
				time.Since(contractStart).Round(time.Millisecond), overlay.NumShortcuts(), overlay.MaxLevel())
			cfg.CHOverlay = overlay
		}
	}

	if *profiles != "" {
		var defs []costmodel.WeightProfile
		if *profiles == "timeofday" {
			defs = costmodel.TimeOfDayProfiles()
		} else {
			for _, name := range strings.Split(*profiles, ",") {
				p, ok := costmodel.ProfileByName(strings.TrimSpace(name))
				if !ok {
					log.Fatalf("-profiles: unknown profile %q (catalog: %v)", strings.TrimSpace(name), costmodel.ProfileNames())
				}
				defs = append(defs, p)
			}
		}
		cfg.Profiles = defs
		cfg.ProfileCapacity = *profileCap
		// Prewarm at startup so no query ever pays a customization pass.
		cfg.PrewarmProfiles = true
	} else if *profileCap != 0 {
		log.Fatalf("-profile-capacity requires -profiles")
	}
	if *churnArcs <= 0 {
		log.Fatalf("-churn-arcs must be positive (got %d)", *churnArcs)
	}

	prewarmStart := time.Now()
	srv, err := server.New(g, cfg)
	if err != nil {
		log.Fatalf("building server: %v", err)
	}
	if len(cfg.Profiles) > 0 {
		capacity := *profileCap
		if capacity <= 0 {
			capacity = len(cfg.Profiles)
		}
		log.Printf("prewarmed %d weight profile layers in %v (LRU capacity %d)",
			srv.ProfileLayerStats().Layers, time.Since(prewarmStart).Round(time.Millisecond), capacity)
	}

	if *churn > 0 {
		in, err := srv.NewIngestor(traffic.Config{})
		if err != nil {
			log.Fatalf("starting ingestion pipeline: %v", err)
		}
		log.Printf("synthetic traffic feed: %.0f events/sec over a %d-arc hot pool (coalesced, max delay %v)",
			*churn, *churnArcs, traffic.DefaultMaxDelay)
		go runChurn(in, g, *churn, *churnArcs, int64(*seed))
	}

	if *statsInterval > 0 {
		go logStats(srv, *statsInterval)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	if *legacyOneShot {
		log.Printf("obfuscated path query processor ready on %s (strategy=%s, paged=%v, legacy one-shot protocol)", ln.Addr(), cfg.Strategy, cfg.Paged)
		if err := srv.Serve(ln); err != nil {
			log.Fatalf("serve: %v", err)
		}
		return
	}
	log.Printf("obfuscated path query processor ready on %s (strategy=%s, paged=%v, multiplexed transport)", ln.Addr(), cfg.Strategy, cfg.Paged)
	if err := srv.ServeMux(ln, protocol.MuxServerConfig{MaxInFlight: *maxInFlight, ShedAt: *shedAt}); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

// runChurn drives a never-ending synthetic weight-change stream through the
// ingestion pipeline: last-write-wins events over a fixed hot-arc pool, paced
// on an absolute schedule (so coarse sleeps burst-catch-up instead of
// undershooting the rate), with occasional reverts to the original weight.
func runChurn(in *traffic.Ingestor, g *roadnet.Graph, rate float64, poolSize int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	type arc struct {
		from, to roadnet.NodeID
		orig     float64
	}
	pool := make([]arc, 0, poolSize)
	stride := g.NumNodes()/poolSize + 1
	for v := 0; v < g.NumNodes() && len(pool) < poolSize; v += stride {
		if arcs := g.Arcs(roadnet.NodeID(v)); len(arcs) > 0 {
			pool = append(pool, arc{roadnet.NodeID(v), arcs[0].To, arcs[0].Cost})
		}
	}
	if len(pool) == 0 {
		log.Printf("churn: no arcs to perturb; feed disabled")
		return
	}
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	for i := 0; ; i++ {
		if wait := start.Add(time.Duration(i) * interval).Sub(time.Now()); wait > 0 {
			time.Sleep(wait)
		}
		a := pool[rng.Intn(len(pool))]
		cost := a.orig * (0.5 + rng.Float64())
		if rng.Intn(6) == 0 {
			cost = a.orig
		}
		if err := in.Ingest(roadnet.ArcWeightChange{From: a.from, To: a.to, NewCost: cost}); err != nil {
			log.Printf("churn: ingest: %v; feed stopped", err)
			return
		}
	}
}

// logStats periodically prints the server's operational counters: query and
// batch throughput, the strategy routing split, the many-to-many bucket
// engine's arena gauges, the streaming ingestion pipeline and pending
// re-customization work, the profile layer cache, the partition's cell-local
// update counters, the SSMD tree cache hit ratio and the workspace pool's
// checkout/reuse numbers — the at-a-glance health line for a long-running
// deployment.
func logStats(srv *server.Server, every time.Duration) {
	for range time.Tick(every) {
		m := srv.Metrics()
		cache := srv.TreeCacheStats()
		ws := srv.WorkspacePoolStats()
		io := srv.IOStats()
		mt := srv.MTMStats()
		ing := srv.IngestStats()
		prof := srv.ProfileLayerStats()
		log.Printf("stats: queries=%d failed=%d batches=%d | route ch=%d mtm=%d fallback=%d | mtm tables=%d bucket-entries=%d scanned=%d arena-high-water=%d | ingest events=%d batches=%d ratio=%.2f queue=%d pending-cells=%d | profiles hits=%d misses=%d layers=%d | partition cells=%d cells-recustomized=%d | tree-cache hits=%d misses=%d ratio=%.3f | workspaces gets=%d in-flight=%d fresh=%d reuse=%.3f | page-faults=%d",
			m.Counter("queries_processed"), m.Counter("queries_failed"), m.Counter("batches_processed"),
			m.Counter("ch_queries"), m.Counter("mtm_queries"), m.Counter("fallback_queries"),
			mt.Tables, mt.BucketEntries, mt.BucketEntriesScanned, mt.ArenaHighWater,
			ing.Events, ing.Batches, ing.CoalesceRatio(), ing.QueueDepth, int64(m.Gauge("recustomize_pending_cells")),
			prof.Hits, prof.Misses, prof.Layers,
			int64(m.Gauge("partition_cells")), m.Counter("cells_recustomized"),
			cache.Hits, cache.Misses, cache.HitRatio(),
			ws.Gets, ws.InFlight(), ws.Fresh, ws.ReuseRatio(),
			io.Faults)
	}
}
