// Command opaque-server runs the OPAQUE directions search server: it loads a
// road network, installs the obfuscated path query processor and answers
// obfuscated path queries from obfuscators over TCP.
//
// Usage:
//
//	opaque-server -network network.txt -listen :7001
//	opaque-server -generate tigerlike -nodes 20000 -listen :7001
//	opaque-server -network network.txt -strategy hybrid -ch-overlay network.och
//	opaque-server -network network.txt -strategy ch-mtm -ch-overlay network.och
//
// With -stats-interval the server periodically logs its throughput counters,
// the strategy routing split (pairwise CH / many-to-many / flat fallback),
// the many-to-many bucket engine gauges, the SSMD tree cache hit ratio and
// the search workspace pool counters.
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"opaque/internal/ch"
	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("opaque-server: ")

	var (
		networkFile   = flag.String("network", "", "road network file in roadnet text format")
		generate      = flag.String("generate", "", "generate a network instead of loading one: grid | geometric | ringradial | tigerlike")
		nodes         = flag.Int("nodes", 10000, "node count when generating")
		seed          = flag.Uint64("seed", 42, "generation seed")
		listen        = flag.String("listen", ":7001", "TCP listen address for obfuscator connections")
		strategy      = flag.String("strategy", "ssmd", "query evaluation strategy: ssmd | pairwise | pairwise-astar | pairwise-alt | ch | ch-mtm | hybrid")
		workers       = flag.Int("workers", 1, "concurrent per-source searches per query")
		batchWorkers  = flag.Int("batch-workers", 0, "concurrent queries per batch in the batch engine (0 = GOMAXPROCS)")
		maxSearches   = flag.Int("max-searches", 0, "server-wide cap on concurrent per-source searches (0 = unbounded)")
		treeCache     = flag.Int("tree-cache", 0, "SSMD tree cache capacity in trees (0 disables the cache)")
		paged         = flag.Bool("paged", false, "simulate disk-resident storage with an LRU buffer pool")
		bufferPages   = flag.Int("buffer-pages", 256, "buffer pool capacity in pages (with -paged)")
		landmarks     = flag.Int("landmarks", 0, "prepare this many ALT landmarks at startup (required for -strategy pairwise-alt)")
		chOverlay     = flag.String("ch-overlay", "", "contraction-hierarchy overlay file built by opaque-preprocess (with -strategy ch|hybrid; empty = contract at startup)")
		chMaxPairs    = flag.Int("ch-max-pairs", 0, "hybrid cutover: queries with at most this many |S|·|T| pairs go to the CH overlay (0 = default)")
		partition     = flag.Int("partition-cells", 0, "contract the startup overlay partition-aware with this many spatial cells: weight updates re-customize only the touched cells (0 = flat; ignored with -ch-overlay, whose file carries its own partition)")
		statsInterval = flag.Duration("stats-interval", 0, "periodically log query/cache/workspace-pool statistics (0 disables)")
	)
	flag.Parse()

	g, err := gen.LoadOrGenerate(*networkFile, *generate, *nodes, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("road network loaded: %d nodes, %d arcs", g.NumNodes(), g.NumArcs())

	cfg := server.DefaultConfig()
	cfg.Strategy = search.Strategy(*strategy)
	cfg.Workers = *workers
	cfg.BatchWorkers = *batchWorkers
	cfg.MaxConcurrentSearches = *maxSearches
	cfg.TreeCache = *treeCache
	cfg.Paged = *paged
	cfg.PageConfig = storage.DefaultConfig()
	cfg.BufferPages = *bufferPages
	cfg.Landmarks = *landmarks
	cfg.CHMaxPairs = *chMaxPairs
	// Refuse misdirected CH flags rather than silently serve with them
	// ignored: -ch-overlay needs a CH-capable strategy, and the pair cutover
	// only exists in hybrid routing (-strategy ch sends everything to CH).
	if *chOverlay != "" && cfg.Strategy != server.StrategyCH && cfg.Strategy != server.StrategyCHMTM && cfg.Strategy != server.StrategyHybrid {
		log.Fatalf("-ch-overlay requires -strategy ch, ch-mtm or hybrid (got %q)", cfg.Strategy)
	}
	if *chMaxPairs != 0 && cfg.Strategy != server.StrategyHybrid {
		log.Fatalf("-ch-max-pairs requires -strategy hybrid (got %q)", cfg.Strategy)
	}
	if *chMaxPairs < 0 {
		log.Fatalf("-ch-max-pairs must be non-negative (got %d); server.New would silently fall back to the default cutover", *chMaxPairs)
	}
	if *partition > 0 && *chOverlay != "" {
		log.Fatalf("-partition-cells shapes the startup contraction and cannot apply to a loaded overlay; build the partitioned file with opaque-preprocess -partition-cells instead")
	}
	if *partition > 0 && cfg.Strategy != server.StrategyCH && cfg.Strategy != server.StrategyCHMTM && cfg.Strategy != server.StrategyHybrid {
		log.Fatalf("-partition-cells requires -strategy ch, ch-mtm or hybrid (got %q)", cfg.Strategy)
	}
	if cfg.Strategy == server.StrategyCH || cfg.Strategy == server.StrategyCHMTM || cfg.Strategy == server.StrategyHybrid {
		if *chOverlay != "" {
			overlay, err := ch.ReadFile(*chOverlay)
			if err != nil {
				log.Fatalf("loading CH overlay: %v", err)
			}
			log.Printf("CH overlay loaded from %s: %d shortcuts, max level %d", *chOverlay, overlay.NumShortcuts(), overlay.MaxLevel())
			cfg.CHOverlay = overlay
		} else {
			// Contract here rather than through Config.BuildCH so the logged
			// duration covers exactly the contraction pass, not the rest of
			// server construction (page store, landmarks, …).
			log.Printf("no -ch-overlay given; contracting the map at startup (persist one with opaque-preprocess to skip this)")
			buildCfg := ch.DefaultBuildConfig()
			// Customizable contraction lets the in-memory server absorb live
			// weight updates (UpdateWeights); paged deployments serve a frozen
			// store, so they keep the smaller witness-pruned overlay.
			buildCfg.Customizable = !cfg.Paged
			if *partition > 1 {
				part, err := roadnet.BuildPartition(g, roadnet.PartitionConfig{Cells: *partition, Seed: int64(*seed)})
				if err != nil {
					log.Fatalf("partitioning the map: %v", err)
				}
				buildCfg.Partition = part
				log.Printf("partitioned into %d cells (%d boundary nodes, %d cut arcs); weight updates re-customize touched cells only",
					part.NumCells(), part.NumBoundary(), part.CutArcCount())
			}
			contractStart := time.Now()
			overlay, err := ch.BuildWithConfig(g, buildCfg)
			if err != nil {
				log.Fatalf("contracting the map: %v", err)
			}
			log.Printf("CH overlay contracted in %v: %d shortcuts, max level %d",
				time.Since(contractStart).Round(time.Millisecond), overlay.NumShortcuts(), overlay.MaxLevel())
			cfg.CHOverlay = overlay
		}
	}

	srv, err := server.New(g, cfg)
	if err != nil {
		log.Fatalf("building server: %v", err)
	}

	if *statsInterval > 0 {
		go logStats(srv, *statsInterval)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	log.Printf("obfuscated path query processor ready on %s (strategy=%s, paged=%v)", ln.Addr(), cfg.Strategy, cfg.Paged)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

// logStats periodically prints the server's operational counters: query and
// batch throughput, the strategy routing split, the many-to-many bucket
// engine's arena gauges, the partition's cell-local update counters, the
// SSMD tree cache hit ratio and the workspace pool's checkout/reuse numbers
// — the at-a-glance health line for a long-running deployment.
func logStats(srv *server.Server, every time.Duration) {
	for range time.Tick(every) {
		m := srv.Metrics()
		cache := srv.TreeCacheStats()
		ws := srv.WorkspacePoolStats()
		io := srv.IOStats()
		mt := srv.MTMStats()
		log.Printf("stats: queries=%d failed=%d batches=%d | route ch=%d mtm=%d fallback=%d | mtm tables=%d bucket-entries=%d scanned=%d arena-high-water=%d | partition cells=%d cells-recustomized=%d | tree-cache hits=%d misses=%d ratio=%.3f | workspaces gets=%d in-flight=%d fresh=%d reuse=%.3f | page-faults=%d",
			m.Counter("queries_processed"), m.Counter("queries_failed"), m.Counter("batches_processed"),
			m.Counter("ch_queries"), m.Counter("mtm_queries"), m.Counter("fallback_queries"),
			mt.Tables, mt.BucketEntries, mt.BucketEntriesScanned, mt.ArenaHighWater,
			int64(m.Gauge("partition_cells")), m.Counter("cells_recustomized"),
			cache.Hits, cache.Misses, cache.HitRatio(),
			ws.Gets, ws.InFlight(), ws.Fresh, ws.ReuseRatio(),
			io.Faults)
	}
}
