// Command opaque-server runs the OPAQUE directions search server: it loads a
// road network, installs the obfuscated path query processor and answers
// obfuscated path queries from obfuscators over TCP.
//
// Usage:
//
//	opaque-server -network network.txt -listen :7001
//	opaque-server -generate tigerlike -nodes 20000 -listen :7001
package main

import (
	"flag"
	"log"
	"net"
	"os"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
	"opaque/internal/search"
	"opaque/internal/server"
	"opaque/internal/storage"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("opaque-server: ")

	var (
		networkFile = flag.String("network", "", "road network file in roadnet text format")
		generate    = flag.String("generate", "", "generate a network instead of loading one: grid | geometric | ringradial | tigerlike")
		nodes       = flag.Int("nodes", 10000, "node count when generating")
		seed        = flag.Uint64("seed", 42, "generation seed")
		listen      = flag.String("listen", ":7001", "TCP listen address for obfuscator connections")
		strategy     = flag.String("strategy", "ssmd", "query evaluation strategy: ssmd | pairwise | pairwise-astar | pairwise-alt")
		workers      = flag.Int("workers", 1, "concurrent per-source searches per query")
		batchWorkers = flag.Int("batch-workers", 0, "concurrent queries per batch in the batch engine (0 = GOMAXPROCS)")
		maxSearches  = flag.Int("max-searches", 0, "server-wide cap on concurrent per-source searches (0 = unbounded)")
		treeCache    = flag.Int("tree-cache", 0, "SSMD tree cache capacity in trees (0 disables the cache)")
		paged        = flag.Bool("paged", false, "simulate disk-resident storage with an LRU buffer pool")
		bufferPages  = flag.Int("buffer-pages", 256, "buffer pool capacity in pages (with -paged)")
		landmarks    = flag.Int("landmarks", 0, "prepare this many ALT landmarks at startup (required for -strategy pairwise-alt)")
	)
	flag.Parse()

	g, err := loadOrGenerate(*networkFile, *generate, *nodes, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("road network loaded: %d nodes, %d arcs", g.NumNodes(), g.NumArcs())

	cfg := server.DefaultConfig()
	cfg.Strategy = search.Strategy(*strategy)
	cfg.Workers = *workers
	cfg.BatchWorkers = *batchWorkers
	cfg.MaxConcurrentSearches = *maxSearches
	cfg.TreeCache = *treeCache
	cfg.Paged = *paged
	cfg.PageConfig = storage.DefaultConfig()
	cfg.BufferPages = *bufferPages
	cfg.Landmarks = *landmarks

	srv, err := server.New(g, cfg)
	if err != nil {
		log.Fatalf("building server: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	log.Printf("obfuscated path query processor ready on %s (strategy=%s, paged=%v)", ln.Addr(), cfg.Strategy, cfg.Paged)
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

func loadOrGenerate(networkFile, generate string, nodes int, seed uint64) (*roadnet.Graph, error) {
	if networkFile != "" {
		f, err := os.Open(networkFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return roadnet.ReadText(f)
	}
	cfg := gen.DefaultNetworkConfig()
	if generate != "" {
		cfg.Kind = gen.NetworkKind(generate)
	}
	cfg.Nodes = nodes
	cfg.Seed = seed
	return gen.Generate(cfg)
}
