// Command opaque-client submits one path query through a networked OPAQUE
// obfuscator and prints the returned path.
//
// Usage:
//
//	opaque-client -obfuscator localhost:7002 -user alice -source 123 -dest 4567 -fs 2 -ft 3
package main

import (
	"flag"
	"fmt"
	"log"

	"opaque/internal/client"
	"opaque/internal/obfuscate"
	"opaque/internal/roadnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opaque-client: ")

	var (
		obfuscatorAddr = flag.String("obfuscator", "localhost:7002", "obfuscator address")
		user           = flag.String("user", "anonymous", "user identifier (seen only by the obfuscator)")
		source         = flag.Int("source", -1, "source node id")
		dest           = flag.Int("dest", -1, "destination node id")
		fs             = flag.Int("fs", 2, "desired source-set size fS")
		ft             = flag.Int("ft", 2, "desired destination-set size fT")
		profile        = flag.String("profile", "", `answer under a named server-side weight profile (e.g. "am-peak") instead of the live metric`)
		legacy         = flag.Bool("legacy-oneshot", false, "speak the legacy one-shot gob protocol (to an obfuscator started with -legacy-oneshot)")
		verbose        = flag.Bool("v", false, "print the full node sequence of the path")
	)
	flag.Parse()

	if *source < 0 || *dest < 0 {
		log.Fatal("both -source and -dest node ids are required")
	}

	opts := []client.Option{client.WithProtection(*fs, *ft), client.WithProfile(*profile)}
	if *legacy {
		opts = append(opts, client.WithLegacyOneShot())
	}
	c, err := client.Dial(*user, *obfuscatorAddr, opts...)
	if err != nil {
		log.Fatalf("connecting to obfuscator: %v", err)
	}
	defer c.Close()

	res, err := c.Query(roadnet.NodeID(*source), roadnet.NodeID(*dest))
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}
	if !res.Found {
		fmt.Printf("no path from %d to %d\n", *source, *dest)
		return
	}
	fmt.Printf("path %d -> %d: %d edges, cost %.1f (breach probability %.4f)\n",
		*source, *dest, res.Path.Len(), res.Path.Cost, obfuscate.BreachProbability(*fs, *ft))
	if *verbose {
		fmt.Println(res.Path.Nodes)
	}
}
