// Command opaque-obfuscator runs the trusted OPAQUE obfuscator middlebox: it
// accepts client path queries over TCP, obfuscates them (independent or
// shared mode), forwards the obfuscated path queries to the directions search
// server, filters the candidate result paths and answers each client with its
// own path.
//
// Usage:
//
//	opaque-obfuscator -network network.txt -server localhost:7001 -listen :7002 -mode shared
package main

import (
	"flag"
	"log"
	"math"
	"net"
	"time"

	"opaque/internal/gen"
	"opaque/internal/obfsvc"
	"opaque/internal/obfuscate"
	"opaque/internal/protocol"
	"opaque/internal/roadnet"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("opaque-obfuscator: ")

	var (
		networkFile = flag.String("network", "", "road network file (the obfuscator's simple map)")
		generate    = flag.String("generate", "", "generate a network instead of loading one")
		nodes       = flag.Int("nodes", 10000, "node count when generating")
		seed        = flag.Uint64("seed", 42, "generation seed")
		serverAddr  = flag.String("server", "localhost:7001", "directions search server address")
		listen      = flag.String("listen", ":7002", "TCP listen address for client connections")
		mode        = flag.String("mode", "shared", "obfuscation mode: independent | shared")
		strategy    = flag.String("fakes", "ringband", "fake endpoint strategy: uniform | ringband | density")
		window      = flag.Duration("window", 50*time.Millisecond, "batching window for shared obfuscation")
		maxBatch    = flag.Int("max-batch", 64, "maximum requests obfuscated together")
		legacy      = flag.Bool("legacy-oneshot", false, "speak the legacy one-shot gob protocol on both sides (to a -legacy-oneshot server, for -legacy-oneshot clients)")
	)
	flag.Parse()

	g, err := gen.LoadOrGenerate(*networkFile, *generate, *nodes, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("obfuscator road map loaded: %d nodes", g.NumNodes())

	// Upstream connection to the directions search server (or a fleet
	// router, which speaks the same protocol): one persistent multiplexed
	// connection by default, the one-shot protocol under -legacy-oneshot.
	var exec obfsvc.QueryExecutor
	if *legacy {
		conn, err := protocol.Dial(*serverAddr)
		if err != nil {
			log.Fatalf("connecting to directions search server: %v", err)
		}
		defer conn.Close()
		exec = obfsvc.NewRemoteExecutor(conn)
	} else {
		mexec, err := obfsvc.DialMuxExecutor(*serverAddr)
		if err != nil {
			log.Fatalf("connecting to directions search server: %v", err)
		}
		defer mexec.Close()
		exec = mexec
	}

	cfg := obfsvc.DefaultConfig()
	cfg.BatchWindow = *window
	cfg.MaxBatch = *maxBatch
	cfg.Obfuscation.Mode = obfuscate.Mode(*mode)
	cfg.Obfuscation.Selector, err = buildSelector(g, *strategy, *seed)
	if err != nil {
		log.Fatal(err)
	}

	svc, err := obfsvc.New(g, exec, cfg)
	if err != nil {
		log.Fatalf("building obfuscator service: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	log.Printf("obfuscator ready on %s (mode=%s, fakes=%s, server=%s, legacy=%v)", ln.Addr(), *mode, *strategy, *serverAddr, *legacy)
	if *legacy {
		if err := svc.Serve(ln); err != nil {
			log.Fatalf("serve: %v", err)
		}
		return
	}
	if err := svc.ServeMux(ln, protocol.MuxServerConfig{}); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

func buildSelector(g *roadnet.Graph, strategy string, seed uint64) (obfuscate.EndpointSelector, error) {
	minX, minY, maxX, maxY := g.Bounds()
	extent := math.Max(maxX-minX, maxY-minY)
	switch strategy {
	case "uniform":
		return obfuscate.NewUniformSelector(seed), nil
	case "density":
		return obfuscate.NewDensityAwareSelector(0.15*extent, seed)
	default:
		return obfuscate.NewRingBandSelector(0.02*extent, 0.15*extent, seed)
	}
}
