// Command netgen generates a synthetic road network and writes it in the
// roadnet text exchange format, so the three networked OPAQUE roles
// (opaque-server, opaque-obfuscator) can load the same map from a file.
//
// Usage:
//
//	netgen -kind tigerlike -nodes 20000 -out network.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"opaque/internal/gen"
	"opaque/internal/roadnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("netgen: ")

	var (
		kind   = flag.String("kind", string(gen.Grid), "network kind: grid | geometric | ringradial | tigerlike")
		nodes  = flag.Int("nodes", 10000, "approximate number of nodes")
		extent = flag.Float64("extent", 100000, "side length of the covered square region (cost units)")
		seed   = flag.Uint64("seed", 42, "generation seed")
		out    = flag.String("out", "", "output file (default: stdout)")
		stats  = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()

	cfg := gen.DefaultNetworkConfig()
	cfg.Kind = gen.NetworkKind(*kind)
	cfg.Nodes = *nodes
	cfg.Extent = *extent
	cfg.Seed = *seed

	g, err := gen.Generate(cfg)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}
	if *stats {
		s := g.ComputeStats()
		fmt.Fprintf(os.Stderr, "nodes=%d arcs=%d components=%d avg-degree=%.2f cost-range=[%.1f, %.1f]\n",
			s.Nodes, s.Arcs, s.Components, s.AvgDegree, s.MinCost, s.MaxCost)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("creating %s: %v", *out, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}
	if err := roadnet.WriteText(w, g); err != nil {
		log.Fatalf("writing network: %v", err)
	}
}
