// Command opaque-audit analyses a directions search server's query log from
// the operator's (adversary's) perspective: how concentrated the observed
// endpoints are, which destinations stand out, and how exposed a specific
// node of interest is. It answers the question the paper's Section II raises
// — what can a semi-trusted server mine from the queries it accumulates —
// for both a plain deployment and an OPAQUE one.
//
// Analyse a persisted log (JSON lines written by server.DumpLog):
//
//	opaque-audit -log queries.jsonl -top 10 -node 4711
//
// Or run the self-contained demonstration that builds one workload and
// compares the logs a direct deployment and an OPAQUE deployment would leave
// behind:
//
//	opaque-audit -demo
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"opaque/internal/core"
	"opaque/internal/gen"
	"opaque/internal/obfuscate"
	"opaque/internal/privacy"
	"opaque/internal/roadnet"
	"opaque/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opaque-audit: ")

	var (
		logFile = flag.String("log", "", "query log file (JSON lines, as written by server.DumpLog)")
		topK    = flag.Int("top", 10, "number of most-frequent destinations to list")
		nodeID  = flag.Int("node", -1, "report the exposure of this specific destination node")
		demo    = flag.Bool("demo", false, "ignore -log and run the built-in direct-vs-OPAQUE comparison")
	)
	flag.Parse()

	switch {
	case *demo:
		runDemo(*topK)
	case *logFile != "":
		auditFile(*logFile, *topK, *nodeID)
	default:
		log.Fatal("either -log <file> or -demo is required")
	}
}

// auditFile analyses one persisted query log.
func auditFile(path string, topK, nodeID int) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("opening log: %v", err)
	}
	defer f.Close()
	entries, err := server.ReadLog(f)
	if err != nil {
		log.Fatalf("parsing log: %v", err)
	}
	observed := toObserved(entries)
	printReport(fmt.Sprintf("log %s", path), observed, topK)
	if nodeID >= 0 {
		fmt.Printf("exposure of node %d: %.4f of the observed destination mass\n",
			nodeID, privacy.HotspotExposure(observed, roadnet.NodeID(nodeID)))
	}
}

// runDemo builds one hotspot workload and compares what the server log
// reveals under a direct deployment and an OPAQUE (shared) deployment.
func runDemo(topK int) {
	netCfg := gen.DefaultNetworkConfig()
	netCfg.Kind = gen.TigerLike
	netCfg.Nodes = 4000
	netCfg.Seed = 7
	g, err := gen.Generate(netCfg)
	if err != nil {
		log.Fatalf("generating network: %v", err)
	}
	clinic := g.NearestNode(0.75*netCfg.Extent, 0.25*netCfg.Extent)
	wl, err := gen.GenerateWorkload(g, gen.WorkloadConfig{Kind: gen.Uniform, Queries: 120, Seed: 8})
	if err != nil {
		log.Fatalf("generating workload: %v", err)
	}
	for i := range wl {
		if i%4 == 0 && wl[i].Source != clinic {
			wl[i].Dest = clinic
		}
	}

	for _, deployment := range []string{"direct", "opaque-shared"} {
		cfg := core.DefaultConfig()
		cfg.Obfuscator.Obfuscation.Mode = obfuscate.Shared
		sys, err := core.NewSystem(g, cfg)
		if err != nil {
			log.Fatalf("building system: %v", err)
		}
		if deployment == "direct" {
			dc := sys.DirectClient()
			for _, p := range wl {
				if _, err := dc.Query(p.Source, p.Dest); err != nil {
					log.Fatalf("direct query: %v", err)
				}
			}
		} else {
			reqs := make([]obfuscate.Request, len(wl))
			for i, p := range wl {
				reqs[i] = obfuscate.Request{User: obfuscate.UserID(fmt.Sprintf("u%03d", i)), Source: p.Source, Dest: p.Dest, FS: 4, FT: 4}
			}
			for start := 0; start < len(reqs); start += 16 {
				end := start + 16
				if end > len(reqs) {
					end = len(reqs)
				}
				if _, err := sys.ProcessBatch(reqs[start:end]); err != nil {
					log.Fatalf("opaque batch: %v", err)
				}
			}
		}
		observed := toObserved(sys.Server.QueryLog())
		printReport(deployment, observed, topK)
		fmt.Printf("clinic (node %d) exposure: %.4f of the observed destination mass\n\n",
			clinic, privacy.HotspotExposure(observed, clinic))
	}
}

func toObserved(entries []server.LogEntry) []privacy.ObservedQuery {
	out := make([]privacy.ObservedQuery, len(entries))
	for i, e := range entries {
		out[i] = privacy.ObservedQuery{Sources: e.Sources, Dests: e.Dests}
	}
	return out
}

func printReport(title string, observed []privacy.ObservedQuery, topK int) {
	rep := privacy.AnalyzeLog(observed, topK)
	fmt.Printf("== %s ==\n", title)
	fmt.Printf("queries logged:            %d\n", rep.Queries)
	fmt.Printf("distinct sources / dests:  %d / %d\n", rep.DistinctSources, rep.DistinctDests)
	fmt.Printf("endpoint entropy (bits):   sources %.2f, dests %.2f\n", rep.SourceEntropy, rep.DestEntropy)
	fmt.Printf("candidate pairs per query: %.2f\n", rep.MeanCandidatesPerQuery)
	fmt.Printf("top destinations:\n")
	for _, f := range rep.TopDests {
		fmt.Printf("  node %-8d %.4f\n", f.Node, f.Share)
	}
}
