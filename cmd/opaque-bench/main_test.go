package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunList checks that -list enumerates every experiment without running
// any of them.
func TestRunList(t *testing.T) {
	var out, diag strings.Builder
	if err := run([]string{"-list"}, &out, &diag); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	got := out.String()
	for _, id := range []string{"E1 ", "E12", "E13"} {
		if !strings.Contains(got, id) {
			t.Errorf("-list output missing %q:\n%s", id, got)
		}
	}
	if strings.Contains(got, "running ") {
		t.Error("-list must not execute experiments")
	}
}

// TestRunFlagErrors checks flag and argument validation paths, including
// that parse diagnostics go to the diagnostic writer, not the table stream.
func TestRunFlagErrors(t *testing.T) {
	var out, diag strings.Builder
	if err := run([]string{"-scale", "enormous"}, &out, &diag); err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Errorf("bad scale: err = %v", err)
	}
	if err := run([]string{"-exp", "E99"}, &out, &diag); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("bad experiment: err = %v", err)
	}
	out.Reset()
	diag.Reset()
	if err := run([]string{"-bogus-flag"}, &out, &diag); !errors.Is(err, errUsage) {
		t.Errorf("undefined flag: err = %v, want errUsage", err)
	}
	if out.Len() != 0 {
		t.Errorf("parse diagnostics leaked onto the table stream: %q", out.String())
	}
	if !strings.Contains(diag.String(), "bogus-flag") {
		t.Errorf("diagnostic stream missing parse error: %q", diag.String())
	}
}

// TestRunSingleExperimentWithCSV is the tiny end-to-end smoke run: one fast
// experiment at small scale, rendered to the writer and exported as CSV.
func TestRunSingleExperimentWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	dir := t.TempDir()
	var out, diag strings.Builder
	if err := run([]string{"-exp", "E2", "-scale", "small", "-csv", dir}, &out, &diag); err != nil {
		t.Fatalf("run -exp E2: %v", err)
	}
	if !strings.Contains(out.String(), "== E2") {
		t.Errorf("output missing rendered E2 table:\n%s", out.String())
	}
	csv, err := os.ReadFile(filepath.Join(dir, "e2.csv"))
	if err != nil {
		t.Fatalf("reading exported CSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV export has %d lines, want header plus rows", len(lines))
	}
}

// TestRunJSONBenchRecord runs two experiments through the comma-separated
// -exp form with -json and checks the emitted BENCH_<date>.json perf record:
// one entry per experiment, plausible timings and table shapes.
func TestRunJSONBenchRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run skipped in -short mode")
	}
	dir := t.TempDir()
	var out, diag strings.Builder
	if err := run([]string{"-exp", "E2, E3", "-scale", "small", "-json", dir}, &out, &diag); err != nil {
		t.Fatalf("run -exp E2,E3 -json: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("BENCH files written: %v (err %v), want exactly one", matches, err)
	}
	raw, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var rec benchFile
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("BENCH file is not valid JSON: %v", err)
	}
	if rec.GeneratedAt == "" || rec.GoVersion == "" {
		t.Fatalf("BENCH envelope incomplete: %+v", rec)
	}
	if len(rec.Experiments) != 2 || rec.Experiments[0].Name != "E2" || rec.Experiments[1].Name != "E3" {
		t.Fatalf("BENCH experiments = %+v, want E2 then E3", rec.Experiments)
	}
	for _, e := range rec.Experiments {
		if e.NsPerOp <= 0 {
			t.Errorf("%s: ns_per_op = %d, want > 0", e.Name, e.NsPerOp)
		}
		if e.Scale != "small" {
			t.Errorf("%s: scale = %q", e.Name, e.Scale)
		}
		if len(e.Tables) == 0 {
			t.Errorf("%s: no table shapes recorded", e.Name)
		}
		for _, tb := range e.Tables {
			if tb.ID == "" || tb.Rows <= 0 || tb.Cols <= 0 {
				t.Errorf("%s: implausible table shape %+v", e.Name, tb)
			}
		}
	}
}
