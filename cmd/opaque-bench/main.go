// Command opaque-bench regenerates the experiment tables of the reproduction
// (DESIGN.md §5 / EXPERIMENTS.md): the Figure 2 baseline comparison,
// Definition 2 breach probabilities, the Lemma 1 cost-model calibration, the
// SSMD sharing measurement, the independent-vs-shared trade-off, obfuscator
// overhead, scaling, the fake-endpoint strategy ablation, the collusion
// attack, the linkage and server-log analyses, the batch-engine throughput
// measurement (E12, which also reports the SSMD tree cache hit ratio from
// the server's metrics registry), the workspace hot-path measurement
// (E13: epoch-stamped search workspaces vs the fresh-slice baseline,
// allocs/query and queries/sec), the contraction-hierarchy measurement
// (E14: offline contraction cost and overlay size versus point-query
// speedup over Dijkstra and ALT), the many-to-many table measurement
// (E15: bucket-algorithm Q(S,T) tables vs pairwise CH and SSMD across
// |S|×|T| shapes, the crossover behind the server's hybrid cutover), and
// the live weight update measurement (E16: copy-on-write apply cost and CH
// re-customization versus the full-rebuild baselines, per update batch
// size), the partitioned update measurement (E17: cell-limited
// re-customization on a partitioned overlay versus the full pass and the
// witness rebuild, per touched-cell count), and the streaming ingestion
// measurement (E18: coalesced update batches and pipelined cell-local
// re-customization under concurrent live and profile-layer query load,
// events/sec versus p99 latency versus the stale-query window), the fleet
// serving-tier measurement (E19: scatter/gather throughput over partition
// and replicate shards versus a single server, every merged table verified
// against the reference), and the availability-under-faults measurement
// (E20: the same fleet workload with one shard crashed, restarted cold and
// blackholed in turn — availability, failover/breaker/heartbeat activity
// and replay convergence per phase).
//
// Usage:
//
//	opaque-bench                 # run every experiment at small scale
//	opaque-bench -scale full     # paper-scale parameters (slower)
//	opaque-bench -exp E5         # run a single experiment
//	opaque-bench -exp E13,E15    # run several
//	opaque-bench -list           # list experiments
//	opaque-bench -csv dir/       # also write each table as CSV
//	opaque-bench -json dir/      # also record a BENCH_<date>.json perf file
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"opaque/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opaque-bench: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help printed usage; that is a successful exit
		}
		if errors.Is(err, errUsage) {
			os.Exit(2) // the flag package already printed the details; 2 matches flag.ExitOnError
		}
		log.Fatal(err)
	}
}

// errUsage marks a command-line parse failure whose details the flag package
// has already written to the diagnostic stream.
var errUsage = errors.New("invalid command line")

// run parses args and executes the selected experiments, writing tables and
// progress lines to out and flag diagnostics (usage, parse errors) to
// errOut. It is the testable core of the command.
func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("opaque-bench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		expID   = fs.String("exp", "", "run experiments by id (E1..E18), comma-separated; empty runs all")
		scale   = fs.String("scale", "small", "experiment scale: small | full")
		list    = fs.Bool("list", false, "list available experiments and exit")
		csvDir  = fs.String("csv", "", "directory to also write per-table CSV files into")
		jsonDir = fs.String("json", "", "directory to also write a machine-readable BENCH_<date>.json perf record into")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(out, "%-4s %s\n", r.ID(), r.Description())
		}
		return nil
	}

	sc := experiments.Scale(strings.ToLower(*scale))
	if sc != experiments.Small && sc != experiments.Full {
		return fmt.Errorf("unknown scale %q (want small or full)", *scale)
	}

	var runners []experiments.Runner
	if *expID == "" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			r, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			runners = append(runners, r)
		}
	}

	var records []benchRecord
	for _, r := range runners {
		// Progress goes to the diagnostic stream so stdout stays pure
		// machine-readable table output.
		fmt.Fprintf(errOut, "running %s: %s\n", r.ID(), r.Description())
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		tables, err := r.Run(sc)
		if err != nil {
			return fmt.Errorf("%s failed: %w", r.ID(), err)
		}
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		rec := benchRecord{
			Name:        r.ID(),
			Description: r.Description(),
			Scale:       string(sc),
			NsPerOp:     elapsed.Nanoseconds(),
			AllocsPerOp: int64(after.Mallocs - before.Mallocs),
		}
		for _, t := range tables {
			rec.Tables = append(rec.Tables, tableShape{
				ID:      t.ID,
				Rows:    len(t.Rows),
				Cols:    len(t.Columns),
				Columns: t.Columns,
				Cells:   t.Rows,
			})
			if err := t.Render(out); err != nil {
				return fmt.Errorf("rendering %s: %w", t.ID, err)
			}
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					return fmt.Errorf("creating %s: %w", *csvDir, err)
				}
				name := filepath.Join(*csvDir, strings.ToLower(t.ID)+".csv")
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					return fmt.Errorf("writing %s: %w", name, err)
				}
			}
		}
		records = append(records, rec)
	}

	if *jsonDir != "" {
		name, err := writeBenchJSON(*jsonDir, records)
		if err != nil {
			return err
		}
		fmt.Fprintf(errOut, "bench record written to %s\n", name)
	}
	return nil
}

// benchRecord is one experiment's entry in the BENCH_<date>.json perf file:
// enough to plot the performance trajectory across PRs (one run = one op;
// allocations measured via runtime.MemStats deltas) and to sanity-check the
// table shapes the run produced.
type benchRecord struct {
	Name        string       `json:"name"`
	Description string       `json:"description"`
	Scale       string       `json:"scale"`
	NsPerOp     int64        `json:"ns_per_op"`
	AllocsPerOp int64        `json:"allocs_per_op"`
	Tables      []tableShape `json:"tables"`
}

// tableShape records the dimensions *and content* of one produced table:
// the column headers and every row's cells, so downstream tooling can read
// measured values (E16's per-batch update costs, E15's crossover times)
// straight out of the artifact instead of re-parsing rendered text.
type tableShape struct {
	ID      string     `json:"id"`
	Rows    int        `json:"rows"`
	Cols    int        `json:"cols"`
	Columns []string   `json:"columns"`
	Cells   [][]string `json:"cells"`
}

// benchFile is the envelope of a BENCH_<date>.json file.
type benchFile struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	Experiments []benchRecord `json:"experiments"`
}

// writeBenchJSON persists the run's records as <dir>/BENCH_<YYYY-MM-DD>.json
// and returns the file name. CI uploads the file as an artifact, so the
// repository accumulates a machine-readable perf history.
func writeBenchJSON(dir string, records []benchRecord) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("creating %s: %w", dir, err)
	}
	now := time.Now().UTC()
	name := filepath.Join(dir, "BENCH_"+now.Format("2006-01-02")+".json")
	payload, err := json.MarshalIndent(benchFile{
		GeneratedAt: now.Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Experiments: records,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(name, append(payload, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("writing %s: %w", name, err)
	}
	return name, nil
}
