// Command opaque-bench regenerates the experiment tables of the reproduction
// (DESIGN.md §5 / EXPERIMENTS.md): the Figure 2 baseline comparison,
// Definition 2 breach probabilities, the Lemma 1 cost-model calibration, the
// SSMD sharing measurement, the independent-vs-shared trade-off, obfuscator
// overhead, scaling, the fake-endpoint strategy ablation, the collusion
// attack, the linkage and server-log analyses, and the batch-engine
// throughput measurement (E12), which also reports the SSMD tree cache hit
// ratio from the server's metrics registry.
//
// Usage:
//
//	opaque-bench                 # run every experiment at small scale
//	opaque-bench -scale full     # paper-scale parameters (slower)
//	opaque-bench -exp E5         # run a single experiment
//	opaque-bench -list           # list experiments
//	opaque-bench -csv dir/       # also write each table as CSV
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"opaque/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opaque-bench: ")

	var (
		expID  = flag.String("exp", "", "run a single experiment by id (E1..E12); empty runs all")
		scale  = flag.String("scale", "small", "experiment scale: small | full")
		list   = flag.Bool("list", false, "list available experiments and exit")
		csvDir = flag.String("csv", "", "directory to also write per-table CSV files into")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID(), r.Description())
		}
		return
	}

	sc := experiments.Scale(strings.ToLower(*scale))
	if sc != experiments.Small && sc != experiments.Full {
		log.Fatalf("unknown scale %q (want small or full)", *scale)
	}

	var runners []experiments.Runner
	if *expID == "" {
		runners = experiments.All()
	} else {
		r, err := experiments.ByID(*expID)
		if err != nil {
			log.Fatal(err)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		log.Printf("running %s: %s", r.ID(), r.Description())
		tables, err := r.Run(sc)
		if err != nil {
			log.Fatalf("%s failed: %v", r.ID(), err)
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				log.Fatalf("rendering %s: %v", t.ID, err)
			}
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					log.Fatalf("creating %s: %v", *csvDir, err)
				}
				name := filepath.Join(*csvDir, strings.ToLower(t.ID)+".csv")
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					log.Fatalf("writing %s: %v", name, err)
				}
			}
		}
	}
}
