// Command opaque-bench regenerates the experiment tables of the reproduction
// (DESIGN.md §5 / EXPERIMENTS.md): the Figure 2 baseline comparison,
// Definition 2 breach probabilities, the Lemma 1 cost-model calibration, the
// SSMD sharing measurement, the independent-vs-shared trade-off, obfuscator
// overhead, scaling, the fake-endpoint strategy ablation, the collusion
// attack, the linkage and server-log analyses, the batch-engine throughput
// measurement (E12, which also reports the SSMD tree cache hit ratio from
// the server's metrics registry), the workspace hot-path measurement
// (E13: epoch-stamped search workspaces vs the fresh-slice baseline,
// allocs/query and queries/sec), and the contraction-hierarchy measurement
// (E14: offline contraction cost and overlay size versus point-query
// speedup over Dijkstra and ALT).
//
// Usage:
//
//	opaque-bench                 # run every experiment at small scale
//	opaque-bench -scale full     # paper-scale parameters (slower)
//	opaque-bench -exp E5         # run a single experiment
//	opaque-bench -list           # list experiments
//	opaque-bench -csv dir/       # also write each table as CSV
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"opaque/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("opaque-bench: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return // -h/-help printed usage; that is a successful exit
		}
		if errors.Is(err, errUsage) {
			os.Exit(2) // the flag package already printed the details; 2 matches flag.ExitOnError
		}
		log.Fatal(err)
	}
}

// errUsage marks a command-line parse failure whose details the flag package
// has already written to the diagnostic stream.
var errUsage = errors.New("invalid command line")

// run parses args and executes the selected experiments, writing tables and
// progress lines to out and flag diagnostics (usage, parse errors) to
// errOut. It is the testable core of the command.
func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("opaque-bench", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		expID  = fs.String("exp", "", "run a single experiment by id (E1..E14); empty runs all")
		scale  = fs.String("scale", "small", "experiment scale: small | full")
		list   = fs.Bool("list", false, "list available experiments and exit")
		csvDir = fs.String("csv", "", "directory to also write per-table CSV files into")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Fprintf(out, "%-4s %s\n", r.ID(), r.Description())
		}
		return nil
	}

	sc := experiments.Scale(strings.ToLower(*scale))
	if sc != experiments.Small && sc != experiments.Full {
		return fmt.Errorf("unknown scale %q (want small or full)", *scale)
	}

	var runners []experiments.Runner
	if *expID == "" {
		runners = experiments.All()
	} else {
		r, err := experiments.ByID(*expID)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		// Progress goes to the diagnostic stream so stdout stays pure
		// machine-readable table output.
		fmt.Fprintf(errOut, "running %s: %s\n", r.ID(), r.Description())
		tables, err := r.Run(sc)
		if err != nil {
			return fmt.Errorf("%s failed: %w", r.ID(), err)
		}
		for _, t := range tables {
			if err := t.Render(out); err != nil {
				return fmt.Errorf("rendering %s: %w", t.ID, err)
			}
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					return fmt.Errorf("creating %s: %w", *csvDir, err)
				}
				name := filepath.Join(*csvDir, strings.ToLower(t.ID)+".csv")
				if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
					return fmt.Errorf("writing %s: %w", name, err)
				}
			}
		}
	}
	return nil
}
