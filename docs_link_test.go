package opaque

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocIntraRepoLinks fails when README.md, docs/ARCHITECTURE.md,
// docs/FORMATS.md or docs/LINTS.md reference a repository file that does
// not exist — both markdown links/images and the backtick-quoted file paths
// the prose leans on. CI runs it as the docs job step, so a renamed file
// cannot silently orphan the documentation that points at it.
func TestDocIntraRepoLinks(t *testing.T) {
	docs := []string{"README.md", "docs/ARCHITECTURE.md", "docs/FORMATS.md", "docs/LINTS.md"}

	// [text](target) and ![alt](target), excluding external schemes and
	// pure intra-page anchors.
	mdLink := regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)
	// `path/to/file.ext` — backtick-quoted repo paths with a known source or
	// doc extension; flags, code identifiers and commands don't match.
	codePath := regexp.MustCompile("`([A-Za-z0-9_.\\-]+(?:/[A-Za-z0-9_.\\-]+)+\\.(?:go|md|yml|txt))`")

	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("documentation file missing: %v", err)
		}
		text := string(data)
		base := filepath.Dir(doc)

		check := func(raw, kind string) {
			target := strings.SplitN(raw, "#", 2)[0] // drop intra-page anchor
			if target == "" {
				return // pure anchor, nothing on disk to verify
			}
			rel := filepath.Join(base, filepath.FromSlash(target))
			if _, err := os.Stat(rel); err != nil {
				t.Errorf("%s: broken %s %q (resolved to %s)", doc, kind, raw, rel)
			}
		}
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			check(target, "link")
		}
		for _, m := range codePath.FindAllStringSubmatch(text, -1) {
			// Backtick paths are written repo-relative regardless of which
			// doc mentions them.
			target := m[1]
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken file reference `%s`", doc, target)
			}
		}
	}
}
